"""Push-based facade over every continuous top-k algorithm in the library.

:class:`StreamEngine` is the single execution path of the reproduction:
the one-shot :func:`repro.run_algorithm`, the comparison helper, the
multi-query engine, the CLI, and the benchmarks all drive it.  Callers
describe queries with :class:`~repro.engine.spec.QuerySpec` (or a plain
:class:`~repro.core.query.TopKQuery`), attach any algorithm registered in
:mod:`repro.registry` by name, and push stream objects one at a time::

    engine = StreamEngine()
    fire = engine.subscribe("fire", QuerySpec(n=5000, k=10, s=100), algorithm="SAP")
    for obj in sensor_feed:           # unbounded — never materialised
        engine.push(obj)
        for result in fire.drain():
            alert(result)
    engine.close()

Internally the engine buckets subscriptions into
:class:`~repro.engine.group.QueryGroup` objects, one per window shape
``(n, s, window type)``: each group batches slides, fills and expires its
window exactly once, and — for algorithms that support it — shares one
partition-sealing / candidate-core pipeline at the group's largest ``k``
across all member queries (see :mod:`repro.core.shared`).  Queries that
share a window shape therefore cost far less than independent engines,
which is the whole point of fanning one stream out to many users.

Memory stays O(window) per window *shape* plus whatever answers the caller
asked to retain.  ``push_many`` consumes any iterable lazily in
slide-sized chunks, so a generator of millions of objects flows through in
constant space.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from ..core.exceptions import AlgorithmStateError
from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..registry import create_algorithm
from .group import GroupKey, QueryGroup, group_key_for
from .spec import QuerySpec, resolve_query
from .subscription import ResultCallback, Subscription

#: What ``subscribe`` accepts as the algorithm: a registry name, a ready
#: instance, or any factory/class called as ``factory(query, **options)``.
AlgorithmLike = Union[str, ContinuousTopKAlgorithm, Callable[..., ContinuousTopKAlgorithm]]

#: Default chunk size of ``push_many``: objects are drained from the input
#: iterable in chunks of this many and moved through each query group with
#: one call, instead of one full dispatch per object per subscription.
PUSH_MANY_CHUNK = 256


class StreamEngine:
    """Shared, push-based execution of any number of continuous queries."""

    def __init__(self, *, keep_results: bool = True, return_results: bool = True) -> None:
        """``keep_results`` is the default retention policy of new
        subscriptions; ``return_results=False`` additionally makes
        :meth:`push` / :meth:`flush` return empty mappings without
        building them, for hot loops that only consume callbacks."""
        self._subscriptions: Dict[str, Subscription] = {}
        self._groups: List[QueryGroup] = []
        self._open_groups: Dict[GroupKey, QueryGroup] = {}
        self._default_keep_results = keep_results
        self._return_results = return_results
        self._controller = None
        self._closed = False

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        name: str,
        spec: Union[QuerySpec, TopKQuery, None] = None,
        algorithm: AlgorithmLike = "SAP",
        *,
        keep_results: Optional[bool] = None,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
        on_result: Optional[ResultCallback] = None,
        **algorithm_options: object,
    ) -> Subscription:
        """Register a continuous query and return its subscription handle.

        Parameters
        ----------
        name:
            Unique identifier of the query on this engine.
        spec:
            The query, as a :class:`QuerySpec` builder or a ready
            :class:`TopKQuery`.  May be omitted when ``algorithm`` is an
            instance (the instance already knows its query).
        algorithm:
            A name from :mod:`repro.registry` (default ``"SAP"``), an
            algorithm instance, or a factory called as
            ``factory(query, **algorithm_options)``.
        keep_results / result_buffer:
            Retention policy for answers: ``keep_results=False`` retains
            nothing (callbacks still fire), ``result_buffer=b`` keeps only
            the ``b`` most recent answers.  The default retains everything,
            matching the legacy one-shot API.
        collect_metrics:
            Record candidate counts, memory, and per-slide latency.
        on_result:
            Optional callback invoked as ``callback(name, result)`` for
            every answer.

        The subscription joins the query group of its window shape.  A
        group that has already consumed stream objects is full: the new
        subscription then opens a fresh group (its window starts empty),
        and only queries subscribed before the first push share state.
        """
        self._ensure_open()
        if name in self._subscriptions:
            raise ValueError(f"query {name!r} is already subscribed")

        instance = self._resolve_algorithm(spec, algorithm, algorithm_options)
        subscription = Subscription(
            name,
            instance,
            keep_results=self._default_keep_results if keep_results is None else keep_results,
            result_buffer=result_buffer,
            collect_metrics=collect_metrics,
        )
        if on_result is not None:
            subscription.on_result(on_result)
        self._group_for(instance.query).add(subscription)
        self._subscriptions[name] = subscription
        return subscription

    def unsubscribe(self, name: str) -> None:
        """Close and remove one query."""
        subscription = self._subscriptions.pop(name, None)
        if subscription is None:
            raise KeyError(f"no subscription named {name!r}")
        subscription.close()
        group = subscription.group
        if group is not None:
            group.remove(subscription)
            if not len(group):
                self._groups.remove(group)
                if self._open_groups.get(group.key) is group:
                    del self._open_groups[group.key]
                if self._controller is not None:
                    self._controller._discard_group(group)

    def subscription(self, name: str) -> Subscription:
        try:
            return self._subscriptions[name]
        except KeyError:
            raise KeyError(
                f"no subscription named {name!r}; active: {sorted(self._subscriptions)}"
            ) from None

    def subscriptions(self) -> List[str]:
        """Names of every subscription, in registration order."""
        return list(self._subscriptions)

    def groups(self) -> List[Dict[str, object]]:
        """Description of every query group and its shared plans."""
        return [group.describe() for group in self._groups]

    def __contains__(self, name: object) -> bool:
        return name in self._subscriptions

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Adaptive control plane
    # ------------------------------------------------------------------
    @property
    def controller(self):
        """The attached :class:`repro.control.AdaptiveController`, if any."""
        return self._controller

    def attach_controller(self, controller) -> None:
        """Put this engine under adaptive control (see :mod:`repro.control`).

        The controller's monitor starts receiving per-slide telemetry from
        every query group (existing and future), and the controller runs
        its MAPE loop after every ingest call, applying tactics at slide
        boundaries.  Only one controller may be attached at a time.
        """
        self._ensure_open()
        if self._controller is not None:
            raise AlgorithmStateError(
                "a controller is already attached; detach it first"
            )
        self._controller = controller
        controller._bind_engine(self)
        for group in self._groups:
            controller._adopt_group(group)

    def detach_controller(self):
        """Detach the controller; telemetry stops, tactics no longer fire.

        Returns the detached controller (its knowledge store, including the
        adaptation event log, stays readable)."""
        controller = self._controller
        if controller is None:
            return None
        self._controller = None
        for group in self._groups:
            group.telemetry = None
        controller._unbind_engine(self)
        return controller

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> Dict[str, List[TopKResult]]:
        """Feed one object to every open subscription.

        Returns, per query name, the answers (possibly none) whose windows
        were completed by this object.  With ``return_results=False`` the
        mapping is never built and an empty dict is returned; callbacks
        and retained results are unaffected.
        """
        self._ensure_open()
        if not self._subscriptions:
            raise ValueError("no queries subscribed")
        controller = self._controller
        if controller is not None:
            if controller.shedding_active and not controller.admit(obj):
                return {}
            controller.note_admitted(1)
        collect = self._return_results
        produced = None
        # Snapshot: result callbacks may unsubscribe (mutating the list).
        for group in tuple(self._groups):
            for subscription, results in group.push(obj, collect=collect):
                if produced is None:
                    produced = {}
                produced[subscription.name] = results
        if controller is not None:
            controller.tick()
        return self._ordered(produced)

    def push_many(
        self, objects: Iterable[StreamObject], *, chunk_size: int = PUSH_MANY_CHUNK
    ) -> int:
        """Feed any iterable of objects, lazily; return how many were pushed.

        The iterable is never materialised — it is drained in chunks of
        ``chunk_size`` objects that move through each query group with a
        single batched call, so arbitrarily long generators stream through
        in O(window) memory with none of ``push``'s per-object dispatch.
        Answers are not collected (use callbacks, ``results()``, or
        ``drain()``); they are produced in the same order as with ``push``.
        """
        self._ensure_open()
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        controller = self._controller
        if controller is not None:
            # Slide-aligned chunks make chunk ends coincide with slide
            # boundaries, the only points where tactics may be applied.
            chunk_size = controller.aligned_chunk(chunk_size)
        count = 0
        chunk: List[StreamObject] = []
        # Shedding can only engage/disengage inside a tick, i.e. between
        # chunks — so the flag is hoisted out of the per-object loop and
        # re-read after each chunk.
        shedding = controller is not None and controller.shedding_active
        for obj in objects:
            if shedding and not controller.admit(obj):
                continue
            chunk.append(obj)
            if len(chunk) >= chunk_size:
                count += self._push_chunk(chunk)
                chunk = []
                shedding = controller is not None and controller.shedding_active
        if chunk:
            count += self._push_chunk(chunk)
        return count

    def _push_chunk(self, chunk: List[StreamObject]) -> int:
        if not self._subscriptions:
            raise ValueError("no queries subscribed")
        for group in tuple(self._groups):
            group.push_batch(chunk, collect=False)
        controller = self._controller
        if controller is not None:
            controller.note_admitted(len(chunk))
            controller.tick()
        return len(chunk)

    def flush(self) -> Dict[str, List[TopKResult]]:
        """Emit the end-of-stream report of time-based windows (if any)."""
        self._ensure_open()
        collect = self._return_results
        produced = None
        for group in tuple(self._groups):
            for subscription, results in group.flush(collect=collect):
                if produced is None:
                    produced = {}
                produced[subscription.name] = results
        if self._controller is not None:
            self._controller.tick()
        return self._ordered(produced)

    def _ordered(
        self, produced: Optional[Dict[str, List[TopKResult]]]
    ) -> Dict[str, List[TopKResult]]:
        """Re-key group-major results into subscription registration order."""
        if not produced:
            return {}
        if len(produced) == 1:
            return produced
        return {name: produced[name] for name in self._subscriptions if name in produced}

    # ------------------------------------------------------------------
    # Reading answers and state
    # ------------------------------------------------------------------
    def results(self, name: str) -> List[TopKResult]:
        """Retained answers of one query (see ``keep_results``)."""
        return self.subscription(name).results()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time state of every subscription, keyed by name."""
        return {name: sub.snapshot() for name, sub in self._subscriptions.items()}

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate performance statistics of every subscription."""
        return {name: sub.stats() for name, sub in self._subscriptions.items()}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> Dict[str, List[TopKResult]]:
        """Flush pending time-based reports, then close every subscription.

        Returns the answers produced by the final flush.  Closing twice is
        a no-op; pushing after close raises :class:`AlgorithmStateError`.
        """
        if self._closed:
            return {}
        produced = self.flush()
        for subscription in self._subscriptions.values():
            subscription.close()
        self._closed = True
        return produced

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise AlgorithmStateError("the engine is closed")

    def _group_for(self, query: TopKQuery) -> QueryGroup:
        key = group_key_for(query)
        group = self._open_groups.get(key)
        if group is None or group.started:
            group = QueryGroup(query.n, query.s, query.time_based)
            self._groups.append(group)
            self._open_groups[key] = group
            if self._controller is not None:
                self._controller._adopt_group(group)
        return group

    @staticmethod
    def _resolve_algorithm(
        spec: Union[QuerySpec, TopKQuery, None],
        algorithm: AlgorithmLike,
        options: Dict[str, object],
    ) -> ContinuousTopKAlgorithm:
        if isinstance(algorithm, ContinuousTopKAlgorithm):
            if options:
                raise ValueError(
                    "algorithm options cannot be applied to a ready instance: "
                    f"{sorted(options)}"
                )
            if spec is not None and resolve_query(spec) != algorithm.query:
                raise ValueError(
                    "the given spec disagrees with the algorithm instance's query; "
                    "omit the spec or build the instance from it"
                )
            return algorithm
        if spec is None:
            raise ValueError("a QuerySpec (or TopKQuery) is required")
        query = resolve_query(spec)
        if isinstance(algorithm, str):
            return create_algorithm(algorithm, query, **options)
        return algorithm(query, **options)
