"""Push-based facade over every continuous top-k algorithm in the library.

:class:`StreamEngine` is the single-process execution path of the
reproduction: the one-shot :func:`repro.run_algorithm`, the comparison
helper, the CLI, and the benchmarks all drive it, and the sharded
execution plane (:mod:`repro.cluster`) runs one of these per worker
process.  Callers describe queries with
:class:`~repro.engine.spec.QuerySpec` (or a plain
:class:`~repro.core.query.TopKQuery`), attach any algorithm registered in
:mod:`repro.registry` by name, and push stream objects one at a time::

    engine = StreamEngine()
    fire = engine.subscribe("fire", QuerySpec(n=5000, k=10, s=100), algorithm="SAP")
    for obj in sensor_feed:           # unbounded — never materialised
        engine.push(obj)
        for result in fire.drain():
            alert(result)
    engine.close()

All of the subscription/group bookkeeping and ingestion mechanics live in
:class:`~repro.engine.core.EngineCore`; this class layers the adaptive
control plane on top — controller attachment, the load-shedding valve,
and slide-aligned chunking — through the core's hook methods.

Internally the engine buckets subscriptions into
:class:`~repro.engine.group.QueryGroup` objects, one per window shape
``(n, s, window type)``: each group batches slides, fills and expires its
window exactly once, and — for algorithms that support it — shares one
partition-sealing / candidate-core pipeline at the group's largest ``k``
across all member queries (see :mod:`repro.core.shared`).  Queries that
share a window shape therefore cost far less than independent engines,
which is the whole point of fanning one stream out to many users.

Memory stays O(window) per window *shape* plus whatever answers the caller
asked to retain.  ``push_many`` consumes any iterable lazily in
slide-sized chunks, so a generator of millions of objects flows through in
constant space.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.exceptions import AlgorithmStateError
from ..core.object import StreamObject
from .core import PUSH_MANY_CHUNK, AlgorithmLike, EngineCore
from .group import QueryGroup

__all__ = ["StreamEngine", "AlgorithmLike", "PUSH_MANY_CHUNK"]


class StreamEngine(EngineCore):
    """Shared, push-based execution of any number of continuous queries.

    Extends :class:`~repro.engine.core.EngineCore` with the adaptive
    control plane: an attached :class:`repro.control.AdaptiveController`
    receives per-slide telemetry, runs its MAPE loop after every ingest
    call, and may shed load or rebuild algorithms at slide boundaries.
    """

    def __init__(self, *, keep_results: bool = True, return_results: bool = True) -> None:
        super().__init__(keep_results=keep_results, return_results=return_results)
        self._controller = None
        #: Set by :meth:`recover` — what the durability plane replayed.
        self.recovery_report = None

    # ------------------------------------------------------------------
    # Durable construction (crash-exact recovery)
    # ------------------------------------------------------------------
    @classmethod
    def durable(cls, directory: str, *, checkpoint_interval: Optional[int] = None,
                **engine_kwargs) -> "StreamEngine":
        """A fresh engine persisting into ``directory``.

        Equivalent to :meth:`recover` on an empty directory; on a
        directory with prior state it *also* recovers first, so callers
        can use one constructor for both cold and crashed starts.
        """
        return cls.recover(directory, checkpoint_interval=checkpoint_interval,
                           **engine_kwargs)

    @classmethod
    def recover(cls, directory: str, *, checkpoint_interval: Optional[int] = None,
                **engine_kwargs) -> "StreamEngine":
        """Rebuild the engine persisted in ``directory`` and keep persisting.

        Restores the latest checkpoint, replays the write-ahead-log tail
        (producing the exact pre-crash subscriptions, windows, and
        retained answers), then attaches the durability manager so the
        recovered engine continues journaling.  The replay summary is
        left on ``engine.recovery_report``.  An empty directory recovers
        to an empty engine — i.e. this is also how a durable engine is
        *first* created.
        """
        from ..durability import DurabilityManager

        kwargs = {}
        if checkpoint_interval is not None:
            kwargs["checkpoint_interval"] = checkpoint_interval
        engine = cls(**engine_kwargs)
        manager = DurabilityManager(directory, **kwargs)
        engine.recovery_report = manager.recover(engine)
        engine.attach_durability(manager)
        return engine

    def close(self):
        produced = super().close()
        if self._durability is not None:
            self._durability.close()
        return produced

    # ------------------------------------------------------------------
    # Adaptive control plane
    # ------------------------------------------------------------------
    @property
    def controller(self):
        """The attached :class:`repro.control.AdaptiveController`, if any."""
        return self._controller

    def attach_controller(self, controller) -> None:
        """Put this engine under adaptive control (see :mod:`repro.control`).

        The controller's monitor starts receiving per-slide telemetry from
        every query group (existing and future), and the controller runs
        its MAPE loop after every ingest call, applying tactics at slide
        boundaries.  Only one controller may be attached at a time.
        """
        self._ensure_open()
        if self._controller is not None:
            raise AlgorithmStateError(
                "a controller is already attached; detach it first"
            )
        self._controller = controller
        controller._bind_engine(self)
        for group in self._groups:
            controller._adopt_group(group)

    def detach_controller(self):
        """Detach the controller; telemetry stops, tactics no longer fire.

        Returns the detached controller (its knowledge store, including the
        adaptation event log, stays readable)."""
        controller = self._controller
        if controller is None:
            return None
        self._controller = None
        for group in self._groups:
            group.telemetry = None
        controller._unbind_engine(self)
        return controller

    # ------------------------------------------------------------------
    # EngineCore hooks: wire the controller into the ingest path
    # ------------------------------------------------------------------
    def _register_group(self, group: QueryGroup) -> None:
        super()._register_group(group)
        if self._controller is not None:
            self._controller._adopt_group(group)

    def _unregister_group(self, group: QueryGroup) -> None:
        super()._unregister_group(group)
        if self._controller is not None:
            self._controller._discard_group(group)

    def _admit_one(self, obj: StreamObject) -> bool:
        controller = self._controller
        if controller is None:
            return True
        if controller.shedding_active and not controller.admit(obj):
            return False
        controller.note_admitted(1)
        return True

    def _admission_filter(self) -> Optional[Callable[[StreamObject], bool]]:
        controller = self._controller
        if controller is not None and controller.shedding_active:
            return controller.admit
        return None

    def _chunk_size_for(self, requested: int) -> int:
        # Slide-aligned chunks make chunk ends coincide with slide
        # boundaries, the only points where tactics may be applied.
        if self._controller is not None:
            return self._controller.aligned_chunk(requested)
        return requested

    def _note_chunk(self, count: int) -> None:
        if self._controller is not None:
            self._controller.note_admitted(count)
            self._controller.tick()

    def _after_ingest(self) -> None:
        if self._controller is not None:
            self._controller.tick()

    # ------------------------------------------------------------------
    def __enter__(self) -> "StreamEngine":
        return self
