"""Mann-Whitney / Wilcoxon rank-sum test (the paper's "WRT").

Section 2.2 of the paper uses the rank-sum test to decide whether the top-k
objects of a candidate partition tend to have larger scores than the high
score objects of a reference interval.  The test needs two ingredients:

* the rank sum ``R1`` of the first sample within the pooled ordering, and
* an acceptance region ``[T_low, T_up]``; the paper reads the bounds off a
  rank-sum table for small samples and switches to the normal approximation
  when both samples contain at least ten objects.

We do not ship a scanned table.  Instead the exact null distribution of the
rank sum is computed by dynamic programming (feasible for the small sample
sizes the dynamic partitioner uses, ``k ≤ 10`` and ``ηk`` of a few dozen)
and the normal approximation is used for larger samples, exactly mirroring
Equation (2) of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

#: Upper quantile of the standard normal distribution for alpha = 0.05
#: (two-sided), i.e. ``u_{1 - alpha/2}``.
DEFAULT_ALPHA = 0.05


def normal_quantile(p: float) -> float:
    """Inverse CDF of the standard normal distribution.

    Uses the Acklam rational approximation, accurate to roughly 1e-9 over
    the open unit interval, which is far more precision than the test needs.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {p}")

    # Coefficients of the Acklam approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)

    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


def rank_sum(sample1: Sequence[float], sample2: Sequence[float]) -> Tuple[float, float]:
    """Rank sums ``(R1, R2)`` of the two samples in the pooled ordering.

    Ties receive mid-ranks, the standard convention for the rank-sum test.
    """
    pooled = [(value, 0) for value in sample1] + [(value, 1) for value in sample2]
    pooled.sort(key=lambda pair: pair[0])

    ranks = [0.0] * len(pooled)
    index = 0
    while index < len(pooled):
        tail = index
        while tail + 1 < len(pooled) and pooled[tail + 1][0] == pooled[index][0]:
            tail += 1
        mid_rank = (index + tail) / 2.0 + 1.0
        for position in range(index, tail + 1):
            ranks[position] = mid_rank
        index = tail + 1

    r1 = sum(rank for rank, (_, origin) in zip(ranks, pooled) if origin == 0)
    r2 = sum(rank for rank, (_, origin) in zip(ranks, pooled) if origin == 1)
    return r1, r2


@lru_cache(maxsize=256)
def _rank_sum_distribution(n1: int, n2: int) -> Tuple[Dict[int, int], int]:
    """Exact null distribution of the rank sum of a sample of size ``n1``.

    Returns a mapping ``rank_sum -> number of arrangements`` and the total
    number of arrangements ``C(n1+n2, n1)``.  Computed by the classic
    dynamic program over "choose j of the first i ranks".
    """
    total_ranks = n1 + n2
    # counts[j] maps achievable rank sums using j chosen ranks to a count.
    counts: List[Dict[int, int]] = [dict() for _ in range(n1 + 1)]
    counts[0][0] = 1
    for rank in range(1, total_ranks + 1):
        for chosen in range(min(rank, n1), 0, -1):
            source = counts[chosen - 1]
            target = counts[chosen]
            for value, ways in source.items():
                target[value + rank] = target.get(value + rank, 0) + ways
    total = math.comb(total_ranks, n1)
    return counts[n1], total


def upper_critical_value(n1: int, n2: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Smallest rank-sum value ``T_up`` with ``P(R1 >= T_up) <= alpha/2``.

    ``R1`` is the rank sum of the sample of size ``n1`` under the null
    hypothesis that both samples come from the same distribution.
    """
    if n1 <= 0 or n2 <= 0:
        raise ValueError("both sample sizes must be positive")
    distribution, total = _rank_sum_distribution(n1, n2)
    threshold = alpha / 2.0
    tail = 0
    # Walk the distribution from the largest achievable rank sum downwards.
    for value in sorted(distribution, reverse=True):
        tail += distribution[value]
        if tail / total > threshold:
            return float(value + 1)
    return float(min(distribution))  # pragma: no cover - degenerate alpha


def lower_critical_value(n1: int, n2: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Largest rank-sum value ``T_low`` with ``P(R1 <= T_low) <= alpha/2``."""
    if n1 <= 0 or n2 <= 0:
        raise ValueError("both sample sizes must be positive")
    distribution, total = _rank_sum_distribution(n1, n2)
    threshold = alpha / 2.0
    tail = 0
    for value in sorted(distribution):
        tail += distribution[value]
        if tail / total > threshold:
            return float(value - 1)
    return float(max(distribution))  # pragma: no cover - degenerate alpha


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of the rank-sum comparison of two samples.

    ``statistic`` is the value compared against zero by the dynamic
    partitioner: positive means sample 1 tends to contain larger values
    than sample 2 (the hypothesis of equal distributions is rejected in the
    upper direction).
    """

    r1: float
    r2: float
    statistic: float
    first_is_larger: bool
    used_normal_approximation: bool


def rank_sum_test(
    sample1: Sequence[float],
    sample2: Sequence[float],
    alpha: float = DEFAULT_ALPHA,
    normal_threshold: int = 10,
) -> MannWhitneyResult:
    """Run the paper's WRT evaluation (Equation 2).

    * Small samples (``len(sample1) < normal_threshold``): the statistic is
      ``R1 − T_up(|S1|, |S2|)``.
    * Larger samples: the statistic is the standardised rank sum minus the
      normal quantile ``u_{1−α/2}``.

    A positive statistic means the first sample tends to have larger values.
    """
    if not sample1 or not sample2:
        raise ValueError("both samples must be non-empty")

    n1, n2 = len(sample1), len(sample2)
    r1, r2 = rank_sum(sample1, sample2)

    if n1 < normal_threshold:
        critical = upper_critical_value(n1, n2, alpha)
        statistic = r1 - critical
        used_normal = False
    else:
        mean = n1 * (n1 + n2 + 1) / 2.0
        std = math.sqrt(n1 * n2 * (n1 + n2 + 1) / 12.0)
        quantile = normal_quantile(1.0 - alpha / 2.0)
        statistic = (r1 - mean) / std - quantile
        used_normal = True

    return MannWhitneyResult(
        r1=r1,
        r2=r2,
        statistic=statistic,
        first_is_larger=statistic > 0.0,
        used_normal_approximation=used_normal,
    )
