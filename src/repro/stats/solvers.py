"""Closed-form solutions of the 3-sigma equations used by the paper.

Section 4.2 introduces ``η`` as the solution of ``(ηk − k)/√(ηk) = 3``
(Theorem 1) and Section 4.3 introduces ``ζ*`` and ``ζ_max`` as the solutions
of ``(ζ − k)/√ζ = 3`` and ``(ζ_max − ζ*)/√(ζ*) = 3`` (Theorem 3).  All three
equations have closed-form solutions via the quadratic formula; this module
exposes them so that every component (dynamic partitioner, TBUI, tests)
derives the constants in exactly one place.
"""

from __future__ import annotations

import math


def _solve_three_sigma(k: float) -> float:
    """Solve ``(x − k)/√x = 3`` for ``x ≥ k``.

    Substituting ``y = √x`` yields ``y² − 3y − k = 0`` whose positive root is
    ``y = (3 + √(9 + 4k)) / 2``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    root = (3.0 + math.sqrt(9.0 + 4.0 * k)) / 2.0
    return root * root


def zeta_star(k: int) -> int:
    """``ζ*``: the smallest integer buffer size satisfying the 3-sigma rule.

    TBUI keeps a buffer of ``2ζ*`` high-score objects before refreshing the
    threshold ``τ`` (Algorithm 2 of the paper).
    """
    return int(math.ceil(_solve_three_sigma(k)))


def zeta_max(k: int) -> int:
    """``ζ_max``: upper bound on the number of objects above ``τ`` that still
    indicates a score distribution similar to the previous unit
    (Theorem 3)."""
    zs = zeta_star(k)
    return int(math.ceil(zs + 3.0 * math.sqrt(zs)))


def eta_for_k(k: int) -> float:
    """``η``: the over-sampling ratio of Theorem 1.

    ``η`` solves ``(ηk − k)/√(ηk) = 3``; equivalently ``ηk`` solves the same
    3-sigma equation as ``ζ*``, so ``η = ζ-solution / k``.  The value is
    always at least 1 and decreases towards 1 as ``k`` grows.
    """
    return _solve_three_sigma(k) / float(k)


def eta_k(k: int) -> int:
    """``⌈ηk⌉`` — the number of reference objects the dynamic partitioner
    compares against (the ``I_ηk`` set of Equation 2)."""
    return int(math.ceil(_solve_three_sigma(k)))


def scaled_eta_k(k: int, scale: float = 1.0) -> int:
    """``⌈scale · ηk⌉`` — the reference-interval size after a runtime retune.

    The adaptive control plane widens (``scale > 1``) or narrows
    (``scale < 1``) the dynamic partitioner's reference interval when the
    3-sigma default misjudges the live score distribution.  ``scale = 1``
    reduces exactly to :func:`eta_k`; the result never drops below 2, the
    smallest sample the rank-sum test accepts.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(2, int(math.ceil(scale * _solve_three_sigma(k))))
