"""Selection algorithms (quickselect / median search).

The TBUI algorithm of the paper (Algorithm 2) repeatedly finds the median of
a buffer of ``2ζ*`` scores using a linear-time median-search algorithm
(reference [5] of the paper, CLRS).  This module provides a deterministic,
dependency-free implementation used by TBUI, the S-AVL optimisation of
Appendix C, and the test-suite.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def _median_of_three(values: List[float], lo: int, hi: int) -> float:
    mid = (lo + hi) // 2
    a, b, c = values[lo], values[mid], values[hi]
    if a > b:
        a, b = b, a
    if b > c:
        b = c
    return max(a, b)


def select(values: Sequence[float], rank: int) -> float:
    """Return the element of ``values`` with the given ascending ``rank``.

    ``rank`` is zero-based: ``select(v, 0)`` is the minimum and
    ``select(v, len(v) - 1)`` is the maximum.  The input sequence is not
    modified.  Average complexity is linear (quickselect with a
    median-of-three pivot); the worst case is quadratic but never triggered
    by the adversarial-free buffers the library feeds it.
    """
    if not values:
        raise ValueError("cannot select from an empty sequence")
    if rank < 0 or rank >= len(values):
        raise ValueError(f"rank {rank} out of range for {len(values)} values")

    work = list(values)
    lo, hi = 0, len(work) - 1
    while True:
        if lo == hi:
            return work[lo]
        pivot = _median_of_three(work, lo, hi)
        left, right = lo, hi
        while left <= right:
            while work[left] < pivot:
                left += 1
            while work[right] > pivot:
                right -= 1
            if left <= right:
                work[left], work[right] = work[right], work[left]
                left += 1
                right -= 1
        if rank <= right:
            hi = right
        elif rank >= left:
            lo = left
        else:
            return work[rank]


def kth_largest(values: Sequence[float], k: int) -> float:
    """The k-th largest element (1-based); ``k=1`` is the maximum."""
    if k <= 0 or k > len(values):
        raise ValueError(f"k={k} out of range for {len(values)} values")
    return select(values, len(values) - k)


def median(values: Sequence[float]) -> float:
    """Lower median of the sequence (the ⌈len/2⌉-th smallest element).

    TBUI uses the median of an even-sized buffer of ``2ζ*`` scores as the new
    threshold ``τ``; the lower median matches the paper's intent of keeping
    the ``ζ*`` largest scores above the threshold.
    """
    if not values:
        raise ValueError("cannot take the median of an empty sequence")
    return select(values, (len(values) - 1) // 2)


def top_values(
    values: Sequence[T], count: int, key: Optional[Callable[[T], float]] = None
) -> List[T]:
    """The ``count`` largest items of ``values`` (best first).

    A convenience helper used where the paper keeps "the min(x, |B|) objects
    with highest scores" from a buffer.
    """
    if count <= 0:
        return []
    keyed = sorted(values, key=key, reverse=True) if key else sorted(values, reverse=True)
    return list(keyed[:count])
