"""Dominance relationships and reference k-skyband computation.

These helpers implement the definitions of Section 2.1 directly and serve
two purposes: they are the reference ("obviously correct") implementations
against which the incremental structures are tested, and they are used by
the baselines when a full re-scan of the window is unavoidable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..core.object import StreamObject
from ..structures.avl import AVLTree


def is_dominated_by(obj: StreamObject, other: StreamObject) -> bool:
    """True when ``other`` dominates ``obj`` (arrived no earlier, ranks higher)."""
    return obj.dominated_by(other)


def dominance_count(obj: StreamObject, others: Iterable[StreamObject]) -> int:
    """Number of objects in ``others`` that dominate ``obj``.

    This is ``D(o, O_W, W)`` from the paper, computed by brute force.
    """
    return sum(1 for other in others if obj.dominated_by(other))


def k_skyband(objects: Sequence[StreamObject], k: int) -> List[StreamObject]:
    """All k-skyband objects of ``objects`` (dominated by fewer than ``k``).

    The computation sweeps the objects from newest to oldest while keeping
    the already-seen objects in an order-statistic AVL tree, so each
    dominance count is an ``O(log n)`` rank query rather than a linear scan.
    The result preserves arrival order (oldest first).
    """
    if k <= 0:
        return []

    seen = AVLTree()
    skyband: List[StreamObject] = []
    for obj in sorted(objects, key=lambda o: o.t, reverse=True):
        dominators = seen.count_greater(obj.rank_key)
        if dominators < k:
            skyband.append(obj)
        seen.insert(obj.rank_key, obj)
    skyband.sort(key=lambda o: o.t)
    return skyband


def k_skyband_brute_force(objects: Sequence[StreamObject], k: int) -> List[StreamObject]:
    """Quadratic reference implementation of the k-skyband (tests only)."""
    if k <= 0:
        return []
    result = [
        obj
        for obj in objects
        if dominance_count(obj, (o for o in objects if o is not obj)) < k
    ]
    result.sort(key=lambda o: o.t)
    return result
