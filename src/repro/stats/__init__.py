"""Statistical substrates: selection, dominance, and the Mann-Whitney rank test."""

from .selection import kth_largest, median, select
from .mannwhitney import MannWhitneyResult, rank_sum, rank_sum_test, upper_critical_value
from .solvers import eta_for_k, zeta_star, zeta_max
from .dominance import dominance_count, k_skyband, is_dominated_by

__all__ = [
    "kth_largest",
    "median",
    "select",
    "MannWhitneyResult",
    "rank_sum",
    "rank_sum_test",
    "upper_critical_value",
    "eta_for_k",
    "zeta_star",
    "zeta_max",
    "dominance_count",
    "k_skyband",
    "is_dominated_by",
]
