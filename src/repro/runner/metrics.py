"""Backward-compatible re-export of the metric collectors.

The collectors moved to :mod:`repro.core.metrics` so that the push-based
:mod:`repro.engine` package can use them without importing the runner (the
runner is itself a thin wrapper over the engine).  This module keeps the
historical import path ``repro.runner.metrics`` working.
"""

from ..core.metrics import MetricsCollector, bytes_to_kb, percentile

__all__ = ["MetricsCollector", "bytes_to_kb", "percentile"]
