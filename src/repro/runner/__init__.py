"""Legacy one-shot helpers: run one algorithm, compare several.

These are thin wrappers over :class:`repro.StreamEngine`.  Multi-query
workloads subscribe directly on the engine (or on
:class:`repro.cluster.ShardedStreamEngine` for multi-process execution);
the old ``MultiQueryEngine`` wrapper has been removed.
"""

from .engine import RunReport, run_algorithm
from .metrics import MetricsCollector, bytes_to_kb
from .comparison import AlgorithmComparison, compare_algorithms

__all__ = [
    "RunReport",
    "run_algorithm",
    "MetricsCollector",
    "bytes_to_kb",
    "AlgorithmComparison",
    "compare_algorithms",
]
