"""Execution engine, metrics collection, and algorithm comparison."""

from .engine import RunReport, run_algorithm
from .metrics import MetricsCollector, bytes_to_kb
from .comparison import AlgorithmComparison, compare_algorithms
from .multiquery import MultiQueryEngine

__all__ = [
    "RunReport",
    "run_algorithm",
    "MetricsCollector",
    "bytes_to_kb",
    "AlgorithmComparison",
    "compare_algorithms",
    "MultiQueryEngine",
]
