"""Drive a continuous top-k algorithm over a stream and collect metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.window import slides_for_query
from .metrics import MetricsCollector


@dataclass
class RunReport:
    """Outcome of one algorithm run over one stream."""

    algorithm: str
    query: TopKQuery
    elapsed_seconds: float
    metrics: MetricsCollector
    results: List[TopKResult] = field(default_factory=list)

    @property
    def slides(self) -> int:
        return self.metrics.slides

    @property
    def average_candidates(self) -> float:
        return self.metrics.average_candidates

    @property
    def average_memory_kb(self) -> float:
        return self.metrics.average_memory_kb

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.slides} slides in {self.elapsed_seconds:.3f}s, "
            f"avg candidates {self.average_candidates:.1f}, "
            f"avg memory {self.average_memory_kb:.1f} KB"
        )


def run_algorithm(
    algorithm: ContinuousTopKAlgorithm,
    objects: Iterable[StreamObject],
    keep_results: bool = True,
    collect_metrics: bool = True,
) -> RunReport:
    """Push a stream through an algorithm, timing it slide by slide.

    ``keep_results=False`` avoids retaining every window answer; the
    benchmarks use it on long streams where only the metrics matter.
    """
    query = algorithm.query
    metrics = MetricsCollector()
    results: List[TopKResult] = []

    events = list(slides_for_query(objects, query))
    started = time.perf_counter()
    for event in events:
        slide_started = time.perf_counter()
        result = algorithm.process_slide(event)
        latency = time.perf_counter() - slide_started
        if keep_results:
            results.append(result)
        if collect_metrics:
            metrics.record(
                algorithm.candidate_count(), algorithm.memory_bytes(), latency
            )
    elapsed = time.perf_counter() - started

    if not collect_metrics:
        # Still record the slide count so report consumers can rely on it.
        metrics.slides = len(events)

    return RunReport(
        algorithm=algorithm.name,
        query=query,
        elapsed_seconds=elapsed,
        metrics=metrics,
        results=results,
    )
