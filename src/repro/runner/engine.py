"""Drive a continuous top-k algorithm over a stream and collect metrics.

:func:`run_algorithm` is the historical one-shot entry point.  It is now a
thin wrapper over the push-based :class:`repro.engine.StreamEngine`: the
stream is consumed lazily, one object at a time, so arbitrarily long
iterables (generators included) run in O(window) memory instead of being
materialised into an event list first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List

from ..core.interface import ContinuousTopKAlgorithm
from ..core.metrics import MetricsCollector
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..engine import StreamEngine


@dataclass
class RunReport:
    """Outcome of one algorithm run over one stream."""

    algorithm: str
    query: TopKQuery
    elapsed_seconds: float
    metrics: MetricsCollector
    results: List[TopKResult] = field(default_factory=list)

    @property
    def slides(self) -> int:
        return self.metrics.slides

    @property
    def average_candidates(self) -> float:
        return self.metrics.average_candidates

    @property
    def average_memory_kb(self) -> float:
        return self.metrics.average_memory_kb

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {self.slides} slides in {self.elapsed_seconds:.3f}s, "
            f"avg candidates {self.average_candidates:.1f}, "
            f"avg memory {self.average_memory_kb:.1f} KB"
        )


def run_algorithm(
    algorithm: ContinuousTopKAlgorithm,
    objects: Iterable[StreamObject],
    keep_results: bool = True,
    collect_metrics: bool = True,
) -> RunReport:
    """Push a stream through an algorithm, timing it slide by slide.

    ``keep_results=False`` avoids retaining every window answer; the
    benchmarks use it on long streams where only the metrics matter.
    """
    engine = StreamEngine()
    subscription = engine.subscribe(
        "run",
        algorithm=algorithm,
        keep_results=keep_results,
        collect_metrics=collect_metrics,
    )
    started = time.perf_counter()
    engine.push_many(objects)
    engine.flush()
    wall_clock = time.perf_counter() - started

    # Report the time spent inside the algorithm (the sum of per-slide
    # processing latencies), not the wall clock of the whole push loop:
    # the benchmarks compare algorithms on this number, so slide-batching
    # and harness overhead must not be attributed to them.  Without
    # metrics there are no latencies, so fall back to the wall clock.
    elapsed = subscription.metrics.latency_total if collect_metrics else wall_clock

    return RunReport(
        algorithm=algorithm.name,
        query=algorithm.query,
        elapsed_seconds=elapsed,
        metrics=subscription.metrics,
        results=subscription.results(),
    )
