"""Run several algorithms over the same stream and compare their answers.

The integration tests and the benchmark harness both need the same two
things: run every algorithm on an identical stream, and check that the
answers agree window by window (they must — all algorithms are exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import results_agree
from .engine import RunReport, run_algorithm

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]


@dataclass
class AlgorithmComparison:
    """Reports of every algorithm plus the pairwise agreement verdict."""

    reports: Dict[str, RunReport]
    agree: bool
    disagreement: Optional[str] = None

    def report(self, name: str) -> RunReport:
        return self.reports[name]

    def names(self) -> List[str]:
        return list(self.reports)


def compare_algorithms(
    factories: Sequence[AlgorithmFactory],
    objects: Sequence[StreamObject],
    query: TopKQuery,
    keep_results: bool = True,
) -> AlgorithmComparison:
    """Run every factory's algorithm over ``objects`` under ``query``.

    Agreement is checked against the first algorithm in the sequence, which
    by convention is the reference (usually the brute-force oracle).
    """
    objects = list(objects)
    reports: Dict[str, RunReport] = {}
    for factory in factories:
        algorithm = factory(query)
        report = run_algorithm(algorithm, objects, keep_results=keep_results)
        reports[algorithm.name] = report

    agree = True
    disagreement: Optional[str] = None
    if keep_results and len(reports) > 1:
        names = list(reports)
        reference = reports[names[0]]
        for name in names[1:]:
            if not results_agree(reference.results, reports[name].results):
                agree = False
                disagreement = f"{name} disagrees with {names[0]}"
                break

    return AlgorithmComparison(reports=reports, agree=agree, disagreement=disagreement)
