"""Run several algorithms over the same stream and compare their answers.

The integration tests and the benchmark harness both need the same two
things: run every algorithm on an identical stream, and check that the
answers agree window by window (they must — all algorithms are exact).

The comparison subscribes every algorithm to one
:class:`repro.engine.StreamEngine`, so all runs form a single query group
(they share the window shape) and the stream is consumed in a single lazy
pass with one slide batcher instead of once per algorithm.  Each
algorithm's elapsed time is the sum of its own per-slide processing
latencies, which keeps the timings attributable even though the pass is
shared.  Distinct algorithms never share an execution plan (their plan
keys differ), so the per-algorithm numbers stay comparable; duplicate
configurations of the *same* algorithm do share one, with the shared
preparation time split evenly across them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import results_agree
from ..engine import StreamEngine
from .engine import RunReport

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]


@dataclass
class AlgorithmComparison:
    """Reports of every algorithm plus the pairwise agreement verdict."""

    reports: Dict[str, RunReport]
    agree: bool
    disagreement: Optional[str] = None

    def report(self, name: str) -> RunReport:
        return self.reports[name]

    def names(self) -> List[str]:
        return list(self.reports)


def compare_algorithms(
    factories: Sequence[AlgorithmFactory],
    objects: Iterable[StreamObject],
    query: TopKQuery,
    keep_results: bool = True,
) -> AlgorithmComparison:
    """Run every factory's algorithm over ``objects`` under ``query``.

    Agreement is checked against the first algorithm in the sequence, which
    by convention is the reference (usually the brute-force oracle).
    """
    engine = StreamEngine()
    names: List[str] = []
    seen: Dict[str, int] = {}
    for factory in factories:
        algorithm = factory(query)
        # Two configurations of the same algorithm share a display name;
        # disambiguate so every run keeps its own report and the agreement
        # check below covers all of them.
        display = algorithm.name
        seen[display] = seen.get(display, 0) + 1
        if seen[display] > 1:
            display = f"{display} #{seen[display]}"
        engine.subscribe(display, algorithm=algorithm, keep_results=keep_results)
        names.append(display)
    engine.push_many(objects)
    engine.flush()

    reports: Dict[str, RunReport] = {}
    for display_name in names:
        subscription = engine.subscription(display_name)
        reports[display_name] = RunReport(
            algorithm=display_name,
            query=query,
            elapsed_seconds=subscription.metrics.latency_total,
            metrics=subscription.metrics,
            results=subscription.results(),
        )

    agree = True
    disagreement: Optional[str] = None
    if keep_results and len(reports) > 1:
        ordered = list(reports)
        reference = reports[ordered[0]]
        for name in ordered[1:]:
            if not results_agree(reference.results, reports[name].results):
                agree = False
                disagreement = f"{name} disagrees with {ordered[0]}"
                break

    return AlgorithmComparison(reports=reports, agree=agree, disagreement=disagreement)
