"""Run several continuous top-k queries over a single pass of the stream.

Real monitoring deployments rarely run one query: different users watch
different window lengths, slides, and k values over the same feed.

:class:`MultiQueryEngine` is the historical interface for that workload.
It is now a thin wrapper over the push-based
:class:`repro.engine.StreamEngine`, which is the single execution path of
the library; new code should use the engine directly (it adds named
algorithm lookup, callbacks, snapshots, and bounded result retention).
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List

from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.result import TopKResult
from ..engine import StreamEngine


class MultiQueryEngine:
    """Shared-stream execution of several continuous top-k queries.

    Deprecated facade kept for backward compatibility; wraps
    :class:`repro.engine.StreamEngine` (which additionally groups
    co-windowed queries onto shared execution plans).  Constructing it
    emits a :class:`DeprecationWarning`.
    """

    def __init__(self, keep_results: bool = True) -> None:
        warnings.warn(
            "MultiQueryEngine is deprecated; subscribe queries on "
            "repro.StreamEngine instead (it shares one pass *and* one "
            "execution plan per window shape)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._engine = StreamEngine(keep_results=keep_results)

    # ------------------------------------------------------------------
    def register(self, name: str, algorithm: ContinuousTopKAlgorithm) -> None:
        """Register an algorithm instance under a unique query name."""
        try:
            self._engine.subscribe(name, algorithm=algorithm)
        except ValueError as exc:
            raise ValueError(f"query {name!r} is already registered") from exc

    def names(self) -> List[str]:
        return self._engine.subscriptions()

    def algorithm(self, name: str) -> ContinuousTopKAlgorithm:
        return self._engine.subscription(name).algorithm

    def results(self, name: str) -> List[TopKResult]:
        """All answers produced so far for one query (requires keep_results)."""
        return self._engine.results(name)

    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> Dict[str, List[TopKResult]]:
        """Feed one object to every registered query.

        Returns, per query name, the answers (possibly none) whose windows
        were completed by this object.
        """
        if not len(self._engine):
            raise ValueError("no queries registered")
        return self._engine.push(obj)

    def finish(self) -> Dict[str, List[TopKResult]]:
        """Flush time-based queries (their final report needs end-of-stream)."""
        return self._engine.flush()

    def run(self, objects: Iterable[StreamObject]) -> Dict[str, List[TopKResult]]:
        """Push a whole stream and return every query's answer sequence."""
        self._engine.push_many(objects)
        self.finish()
        return {name: self._engine.results(name) for name in self._engine.subscriptions()}
