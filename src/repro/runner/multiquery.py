"""Run several continuous top-k queries over a single pass of the stream.

Real monitoring deployments rarely run one query: different users watch
different window lengths, slides, and k values over the same feed.  The
:class:`MultiQueryEngine` keeps one algorithm instance (and one incremental
slide batcher) per registered query and pushes every stream object exactly
once, delivering each query's answers as its own window slides.

The engine is algorithm-agnostic: any :class:`ContinuousTopKAlgorithm` can
be registered, so a SAP instance and a MinTopK instance can monitor the
same stream side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.interface import ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.result import TopKResult
from ..core.window import SlideBatcher


@dataclass
class _RegisteredQuery:
    name: str
    algorithm: ContinuousTopKAlgorithm
    batcher: SlideBatcher
    results: List[TopKResult] = field(default_factory=list)


class MultiQueryEngine:
    """Shared-stream execution of several continuous top-k queries."""

    def __init__(self, keep_results: bool = True) -> None:
        self._queries: Dict[str, _RegisteredQuery] = {}
        self._keep_results = keep_results

    # ------------------------------------------------------------------
    def register(self, name: str, algorithm: ContinuousTopKAlgorithm) -> None:
        """Register an algorithm instance under a unique query name."""
        if name in self._queries:
            raise ValueError(f"query {name!r} is already registered")
        self._queries[name] = _RegisteredQuery(
            name=name, algorithm=algorithm, batcher=SlideBatcher(algorithm.query)
        )

    def names(self) -> List[str]:
        return list(self._queries)

    def algorithm(self, name: str) -> ContinuousTopKAlgorithm:
        return self._queries[name].algorithm

    def results(self, name: str) -> List[TopKResult]:
        """All answers produced so far for one query (requires keep_results)."""
        return list(self._queries[name].results)

    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> Dict[str, List[TopKResult]]:
        """Feed one object to every registered query.

        Returns, per query name, the answers (possibly none) whose windows
        were completed by this object.
        """
        if not self._queries:
            raise ValueError("no queries registered")
        produced: Dict[str, List[TopKResult]] = {}
        for entry in self._queries.values():
            new_results = [
                entry.algorithm.process_slide(event) for event in entry.batcher.push(obj)
            ]
            if new_results:
                produced[entry.name] = new_results
                if self._keep_results:
                    entry.results.extend(new_results)
        return produced

    def finish(self) -> Dict[str, List[TopKResult]]:
        """Flush time-based queries (their final report needs end-of-stream)."""
        produced: Dict[str, List[TopKResult]] = {}
        for entry in self._queries.values():
            new_results = [
                entry.algorithm.process_slide(event) for event in entry.batcher.flush()
            ]
            if new_results:
                produced[entry.name] = new_results
                if self._keep_results:
                    entry.results.extend(new_results)
        return produced

    def run(self, objects: Iterable[StreamObject]) -> Dict[str, List[TopKResult]]:
        """Push a whole stream and return every query's answer sequence."""
        for obj in objects:
            self.push(obj)
        self.finish()
        return {name: list(entry.results) for name, entry in self._queries.items()}
