"""The Analyze stage: turn raw telemetry into named symptoms.

Each analyzer inspects one subscription's ring buffers in the knowledge
store and reports at most one :class:`Symptom` per tick.  Analyzers never
choose tactics — that mapping is the planner's job, driven by the policy —
so the same symptom can trigger different tactics in different policies.

Three production symptoms are detected:

* ``latency-violation`` — a percentile of recent per-slide latencies
  exceeds the policy's latency budget;
* ``candidate-blowup`` — the candidate set has grown far beyond its own
  recent baseline (the window shape makes absolute thresholds meaningless
  across algorithms, so the baseline is the subscription's own history);
* ``score-drift`` — the distribution of per-slide best scores has shifted
  between the older and newer halves of the telemetry window, detected
  with the same Mann-Whitney rank-sum test (:mod:`repro.stats.mannwhitney`)
  the paper's dynamic partitioner uses for partition sizing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..stats.mannwhitney import normal_quantile, rank_sum
from .knowledge import Knowledge

#: Symptom kinds, in the order rules are usually written for them.  The
#: first three are per-subscription (detected by an engine-attached
#: controller); the last two are cluster-level (detected by
#: :class:`ShardPressure` over per-shard transport/knowledge metrics).
SYMPTOM_KINDS = (
    "latency-violation",
    "candidate-blowup",
    "score-drift",
    "shard-overload",
    "cluster-underload",
)


@dataclass(frozen=True)
class Symptom:
    """One detected anomaly on one subscription."""

    kind: str
    subscription: str
    #: Dimensionless badness (1.0 = exactly at threshold); planners may
    #: rank competing symptoms by it.
    severity: float
    evidence: Dict[str, object] = field(default_factory=dict)


class Analyzer:
    """Base class: analyze one subscription, report at most one symptom."""

    kind: str = "analyzer"

    def analyze(self, knowledge: Knowledge, subscription: str) -> Optional[Symptom]:
        raise NotImplementedError


class LatencyBudgetAnalyzer(Analyzer):
    """Detects per-slide latency percentiles above a budget."""

    kind = "latency-violation"

    def __init__(
        self,
        budget_seconds: float,
        percentile: float = 0.95,
        window: int = 32,
        min_samples: int = 16,
    ) -> None:
        if budget_seconds <= 0:
            raise ValueError(f"latency budget must be positive, got {budget_seconds}")
        self.budget_seconds = budget_seconds
        self.percentile = percentile
        self.window = window
        self.min_samples = min_samples

    def analyze(self, knowledge: Knowledge, subscription: str) -> Optional[Symptom]:
        if knowledge.sample_count(subscription) < self.min_samples:
            return None
        observed = knowledge.latency_percentile(
            subscription, self.percentile, self.window
        )
        if observed <= self.budget_seconds:
            return None
        return Symptom(
            kind=self.kind,
            subscription=subscription,
            severity=observed / self.budget_seconds,
            evidence={
                "percentile": self.percentile,
                "observed_seconds": observed,
                "budget_seconds": self.budget_seconds,
                "window": self.window,
            },
        )


class CandidateBlowupAnalyzer(Analyzer):
    """Detects a candidate set growing far beyond its own baseline.

    The baseline is the mean candidate count over the *older* portion of a
    rolling history tail; the signal is the mean over the most recent
    ``window`` slides.  Using the subscription's own history makes the
    detector algorithm-agnostic: a SAP candidate set of a few hundred and a
    MinTopK pool of thousands both have meaningful relative blowups.
    """

    kind = "candidate-blowup"

    def __init__(
        self, factor: float = 3.0, window: int = 32, min_samples: int = 96
    ) -> None:
        if factor <= 1.0:
            raise ValueError(f"blowup factor must exceed 1, got {factor}")
        self.factor = factor
        self.window = window
        self.min_samples = max(min_samples, 2 * window)

    def analyze(self, knowledge: Knowledge, subscription: str) -> Optional[Symptom]:
        if knowledge.sample_count(subscription) < self.min_samples:
            return None
        # A rolling baseline: only the last 2·window samples are read (the
        # window before the signal window), keeping idle-analysis cost flat.
        samples = knowledge.slides(subscription, 2 * self.window)
        recent = samples[-self.window :]
        older = samples[: -self.window]
        if not older:
            return None
        baseline = max(1.0, sum(s.candidates for s in older) / len(older))
        level = sum(s.candidates for s in recent) / len(recent)
        if level <= self.factor * baseline:
            return None
        return Symptom(
            kind=self.kind,
            subscription=subscription,
            severity=level / (self.factor * baseline),
            evidence={
                "recent_mean": level,
                "baseline_mean": baseline,
                "factor": self.factor,
                "window": self.window,
            },
        )


@dataclass(frozen=True)
class ShardPressureSample:
    """One shard's load picture at one autoscaler tick.

    ``ring_occupancy`` is the FULL-slot fraction of the shard's shm ring
    (0.0 on the queue transport); ``bp_wait_delta`` counts producer
    stalls on this shard's inbound path since the previous tick;
    ``load_share`` is the shard's fraction of the cluster's placement
    load; ``subscriptions`` its hosted query count.
    """

    shard: int
    load_share: float
    ring_occupancy: float
    bp_wait_delta: int
    subscriptions: int


class ShardPressure:
    """Cluster-level analyzer: is any shard saturated, is the pool idle?

    Unlike the per-subscription analyzers above, this one inspects the
    *transport* — backpressure stalls and ring occupancy are the two
    signals that rise when a worker process can no longer keep up with
    the stream, whatever the reason (query load, skewed placement, a
    slow core) — plus the placement load shares, merged per shard by the
    caller (see :meth:`repro.cluster.autoscale.ShardAutoscaler.monitor`).

    Two symptoms, mirroring the MAPE-K split of the per-engine loop:

    * ``shard-overload`` — a shard stalled producers since the last tick
      or its ring sits above ``high_occupancy``; severity scales with
      how far past the threshold it is.  At most one symptom per tick
      (the worst shard): one spawn per tick keeps scaling monotone.
    * ``cluster-underload`` — every shard is simultaneously below
      ``low_occupancy``, nobody stalled, and the *emptiest* shard's load
      share is below an even split's, so draining it onto the others
      cannot overload them.
    """

    def __init__(
        self,
        *,
        high_occupancy: float = 0.75,
        low_occupancy: float = 0.25,
        bp_wait_tolerance: int = 0,
    ) -> None:
        if not 0.0 <= low_occupancy < high_occupancy <= 1.0:
            raise ValueError(
                "need 0 <= low_occupancy < high_occupancy <= 1, got "
                f"{low_occupancy} / {high_occupancy}"
            )
        if bp_wait_tolerance < 0:
            raise ValueError(f"bp_wait_tolerance must be >= 0, got {bp_wait_tolerance}")
        self.high_occupancy = high_occupancy
        self.low_occupancy = low_occupancy
        self.bp_wait_tolerance = bp_wait_tolerance

    def analyze_cluster(
        self, samples: List["ShardPressureSample"]
    ) -> Optional[Symptom]:
        if not samples:
            return None
        worst: Optional[Symptom] = None
        for sample in samples:
            severity = 0.0
            if sample.bp_wait_delta > self.bp_wait_tolerance:
                severity = max(
                    severity,
                    1.0 + (sample.bp_wait_delta - self.bp_wait_tolerance),
                )
            if sample.ring_occupancy > self.high_occupancy:
                severity = max(severity, sample.ring_occupancy / self.high_occupancy)
            if severity > 0.0 and (worst is None or severity > worst.severity):
                worst = Symptom(
                    kind="shard-overload",
                    subscription=f"shard:{sample.shard}",
                    severity=severity,
                    evidence={
                        "shard": sample.shard,
                        "bp_wait_delta": sample.bp_wait_delta,
                        "ring_occupancy": sample.ring_occupancy,
                        "load_share": sample.load_share,
                    },
                )
        if worst is not None:
            return worst
        if len(samples) < 2:
            return None
        if any(s.bp_wait_delta > 0 for s in samples):
            return None
        if any(s.ring_occupancy >= self.low_occupancy for s in samples):
            return None
        emptiest = min(samples, key=lambda s: (s.load_share, -s.shard))
        even_share = 1.0 / len(samples)
        if emptiest.load_share >= even_share:
            return None
        return Symptom(
            kind="cluster-underload",
            subscription=f"shard:{emptiest.shard}",
            severity=1.0 + (even_share - emptiest.load_share) / even_share,
            evidence={
                "shard": emptiest.shard,
                "load_share": emptiest.load_share,
                "even_share": even_share,
                "shards": len(samples),
            },
        )


class ScoreDriftAnalyzer(Analyzer):
    """Detects a shift in the distribution of per-slide best scores.

    Compares the newest ``window`` top scores against the ``window`` before
    them with the two-sided rank-sum test — drift in either direction (a
    hot streak or a collapse) invalidates the partition-sizing assumptions
    the current configuration was chosen under.  Both directions come from
    a single pooled ranking: with equal sample sizes ``>= 10`` the test's
    normal approximation applies (exactly the regime
    :func:`repro.stats.mannwhitney.rank_sum_test` switches to), so one rank
    sum yields both directional statistics.

    Statistical significance alone is not enough: consecutive sliding
    windows overlap, so their best scores are strongly autocorrelated and
    a slow ratchet of the window maximum can order two adjacent samples
    perfectly without any real regime change.  ``min_shift`` therefore
    additionally requires a *practical* level shift — the medians of the
    two samples must differ by that relative fraction — before the
    symptom fires.  A refractory period of ``window`` slides after each
    detection stops one long regime change from being reported every tick.
    """

    kind = "score-drift"

    def __init__(
        self, alpha: float = 0.01, window: int = 16, min_shift: float = 0.05
    ) -> None:
        if window < 10:
            # Below ten the normal approximation of the rank-sum test (and
            # any drift verdict worth acting on) breaks down.
            raise ValueError(f"drift window must be at least 10, got {window}")
        if min_shift < 0:
            raise ValueError(f"min_shift must be >= 0, got {min_shift}")
        self.alpha = alpha
        self.window = window
        self.min_shift = min_shift
        self._quantile = normal_quantile(1.0 - alpha / 2.0)
        self._last_fired: Dict[str, int] = {}

    def analyze(self, knowledge: Knowledge, subscription: str) -> Optional[Symptom]:
        # Small margin over 2·window covers slides whose answers carried
        # no score (dropped from the series).
        series = knowledge.top_score_series(subscription, 2 * self.window + 8)
        if len(series) < 2 * self.window:
            return None
        latest = knowledge.latest_slide_index(subscription)
        fired = self._last_fired.get(subscription)
        if fired is not None and latest is not None and latest - fired < self.window:
            return None
        recent: List[float] = series[-self.window :]
        reference: List[float] = series[-2 * self.window : -self.window]
        w = self.window
        # Practical-significance gate first: it is cheaper than the rank
        # test and rejects the autocorrelated-maximum false positives.
        recent_median = sorted(recent)[w // 2]
        reference_median = sorted(reference)[w // 2]
        level = max(abs(recent_median), abs(reference_median))
        if level == 0.0:
            return None
        shift = abs(recent_median - reference_median) / level
        if shift < self.min_shift:
            return None
        r_recent, r_reference = rank_sum(recent, reference)
        mean = w * (2 * w + 1) / 2.0
        std = math.sqrt(w * w * (2 * w + 1) / 12.0)
        stat_up = (r_recent - mean) / std - self._quantile
        stat_down = (r_reference - mean) / std - self._quantile
        if stat_up <= 0.0 and stat_down <= 0.0:
            return None
        direction = "up" if stat_up > 0.0 else "down"
        statistic = max(stat_up, stat_down)
        if latest is not None:
            self._last_fired[subscription] = latest
        return Symptom(
            kind=self.kind,
            subscription=subscription,
            severity=1.0 + statistic,
            evidence={
                "direction": direction,
                "statistic": statistic,
                "median_shift": shift,
                "alpha": self.alpha,
                "window": self.window,
            },
        )
