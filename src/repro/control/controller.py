"""The adaptive controller: one MAPE-K loop over a live StreamEngine.

:class:`AdaptiveController` wires the four stages together around a shared
:class:`~repro.control.knowledge.Knowledge` store and hooks into the
engine's ingest path::

    from repro import QuerySpec, StreamEngine
    from repro.control import AdaptiveController, Policy

    engine = StreamEngine(keep_results=False, return_results=False)
    engine.subscribe("watch", QuerySpec(n=1000, k=10, s=50), algorithm="SAP-equal")
    controller = AdaptiveController(Policy.default(latency_budget_seconds=0.01))
    engine.attach_controller(controller)
    engine.push_many(feed)                 # tactics fire at slide boundaries
    for event in controller.events():      # the adaptation audit log
        print(event.slide_index, event.subscription, event.tactic, event.trigger)

While attached, the controller's **monitor** receives per-slide telemetry
from every query group; after each ingest call the engine invokes
:meth:`tick`, which runs **analyzers** over the knowledge store, lets the
**planner** choose tactics under the policy, and has the **executor**
apply them.  Tactics that reconfigure execution only fire at exact slide
boundaries of count-based groups (the only points where the live window
state equals the last reported window), which the engine makes frequent by
aligning ``push_many`` chunks to the controlled slide sizes.

With load shedding disabled (the default), every tactic is
answer-preserving: a controlled engine produces byte-identical results to
an uncontrolled one on the same stream.  Load shedding trades bounded
accuracy for throughput and is accounted explicitly
(:meth:`accuracy_report`).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

from ..baselines.mintopk import MinTopK
from ..core.exceptions import AlgorithmStateError
from ..core.object import StreamObject
from ..obs.registry import get_registry
from .analyzers import Analyzer, Symptom
from .executor import Executor
from .knowledge import AdaptationEvent, Knowledge
from .monitor import Monitor
from .planner import Planner
from .policy import Policy

#: Ceiling for slide-aligned chunk sizes: beyond this, aligning chunks to
#: the least common multiple of the controlled slide sizes would buffer an
#: unreasonable amount of stream per dispatch, so the engine keeps its
#: requested chunking (tactics then fire on whatever boundaries occur).
MAX_ALIGNED_CHUNK = 32_768


class AdaptiveController:
    """MAPE-K loop over the query groups of one :class:`StreamEngine`."""

    def __init__(
        self,
        policy: Optional[Policy] = None,
        knowledge: Optional[Knowledge] = None,
    ) -> None:
        self.policy = policy if policy is not None else Policy.default()
        self.knowledge = knowledge if knowledge is not None else Knowledge()
        self.monitor = Monitor(self.knowledge)
        self.analyzers: List[Analyzer] = self.policy.build_analyzers()
        self.planner = Planner(self.policy)
        self.executor = Executor(self.knowledge)
        self._engine = None
        self._groups: List[object] = []
        self._analyzed: Dict[int, int] = {}
        self._shed_stride: Optional[int] = None
        self._admit_counter = 0
        self._registry = None

    # ------------------------------------------------------------------
    # Engine binding (driven by StreamEngine.attach_controller)
    # ------------------------------------------------------------------
    def _bind_engine(self, engine) -> None:
        if self._engine is not None:
            raise AlgorithmStateError(
                "this controller is already attached to an engine"
            )
        self._engine = engine
        self._registry = get_registry()
        self._registry.add_collector(self._collect_metrics)

    def _unbind_engine(self, engine) -> None:
        if self._engine is engine:
            for group in self._groups:
                for subscription in group.members():
                    self.monitor.unwatch(subscription)
            self._engine = None
            self._groups = []
            self._analyzed = {}
            self._shed_stride = None
            if self._registry is not None:
                self._registry.remove_collector(self._collect_metrics)
                self._registry = None

    def _collect_metrics(self, registry) -> None:
        """Pull-time export of the control plane's accounting.

        Counter values mirror the knowledge store's exact monotone state,
        so the collector assigns rather than increments — the per-object
        admit valve stays untouched.
        """
        shedding = self.knowledge.shedding
        registry.counter(
            "repro_shed_objects_total", "Stream objects dropped by load shedding."
        ).value = float(shedding.shed)
        registry.counter(
            "repro_shedding_engagements_total", "Load-shedding engagements."
        ).value = float(shedding.engagements)
        for tactic, count in self.knowledge.tactic_counts.items():
            registry.counter(
                "repro_tactics_total",
                "Adaptation tactics attempted (applied and declined).",
                {"tactic": tactic},
            ).value = float(count)

    def _adopt_group(self, group) -> None:
        group.telemetry = self.monitor
        self._groups.append(group)
        for subscription in group.members():
            self.monitor.watch(subscription)

    def _discard_group(self, group) -> None:
        """Forget a group the engine removed (its last member left)."""
        if group in self._groups:
            self._groups.remove(group)
        self._analyzed.pop(id(group), None)

    def rewatch(self, group) -> None:
        """Re-install telemetry taps after a rebuild swapped algorithms."""
        for subscription in group.members():
            self.monitor.watch(subscription)

    @property
    def attached(self) -> bool:
        return self._engine is not None

    # ------------------------------------------------------------------
    # Ingest-path hooks (driven by the engine)
    # ------------------------------------------------------------------
    def admit(self, obj: StreamObject) -> bool:
        """Load-shedding valve: False drops the object before any window.

        Stride sampling: with an active stride ``m``, every ``m``-th object
        is shed (fraction ``1/m``), which preserves the temporal structure
        of the stream better than dropping bursts.  Shed objects are
        counted here; admitted objects are counted in bulk through
        :meth:`note_admitted` (the engine knows how many it pushed), so the
        common no-shedding path costs nothing per object.
        """
        if self._shed_stride is None:
            return True
        self._admit_counter += 1
        if self._admit_counter % self._shed_stride == 0:
            self.knowledge.shedding.shed += 1
            return False
        return True

    def note_admitted(self, count: int) -> None:
        """Bulk-count objects that reached the windows (accuracy account)."""
        self.knowledge.shedding.admitted += count

    def aligned_chunk(self, requested: int) -> int:
        """A chunk size aligned to the controlled groups' slide boundaries.

        The least common multiple of the count-based groups' slide sizes
        divides the returned chunk, so every chunk ends exactly on a slide
        boundary of every group — the points where :meth:`tick` may apply
        tactics.  Falls back to ``requested`` when alignment would exceed
        :data:`MAX_ALIGNED_CHUNK`.
        """
        lcm = 1
        for group in self._groups:
            if group.time_based or not len(group):
                continue
            lcm = lcm * group.s // math.gcd(lcm, group.s)
            if lcm > MAX_ALIGNED_CHUNK:
                return requested
        if lcm <= 1:
            return requested
        if requested <= lcm:
            return lcm
        return (requested // lcm) * lcm

    # ------------------------------------------------------------------
    # The MAPE tick
    # ------------------------------------------------------------------
    def tick(self) -> List[AdaptationEvent]:
        """Run one Monitor→Analyze→Plan→Execute pass; return new events.

        Called by the engine after every ingest call.  Work happens only
        for groups that reached a *new* slide boundary since the last
        tick, so the per-push overhead of an idle controller is a couple
        of integer comparisons per group.
        """
        events: List[AdaptationEvent] = []
        interval = self.policy.analysis_interval_slides
        analyzed = False
        for group in self._groups:
            if not len(group) or not group.at_slide_boundary():
                continue
            index = group.last_slide_index()
            last = self._analyzed.get(id(group))
            if last is not None and index - last < interval:
                continue
            self._analyzed[id(group)] = index
            analyzed = True
            symptoms = self._analyze(group)
            actions = self.planner.plan(
                group,
                symptoms,
                self.knowledge,
                self.shedding_active,
                shed_allowed=self._shed_allowed(),
            )
            recovery = self.planner.plan_recovery(self.knowledge, self.shedding_active)
            if recovery is not None:
                actions.append(recovery)
            if actions:
                events.extend(self.executor.execute(group, actions, self))
        if analyzed and self._registry is not None and self._registry.enabled:
            # Feed the knowledge store one observability snapshot per
            # analysis pass, so MAPE-K analyzers can correlate engine
            # symptoms with transport/serving metrics.
            self.knowledge.add_metrics_snapshot(
                {"ts": time.time(), "metrics": self._registry.snapshot()}
            )
        return events

    def _analyze(self, group) -> List[Symptom]:
        symptoms: List[Symptom] = []
        for subscription in group.members():
            for analyzer in self.analyzers:
                symptom = analyzer.analyze(self.knowledge, subscription.name)
                if symptom is not None:
                    symptoms.append(symptom)
        symptoms.sort(key=lambda s: s.severity, reverse=True)
        return symptoms

    # ------------------------------------------------------------------
    # Load-shedding valve
    # ------------------------------------------------------------------
    @property
    def shedding_active(self) -> bool:
        return self._shed_stride is not None

    def _shed_allowed(self) -> bool:
        """Engine-wide shedding gate: stride sampling gaps the arrival
        orders, which MinTopK's window-position arithmetic cannot survive
        (its predicted sets would desynchronise from the batcher and leak),
        so the valve stays shut while any MinTopK query is live."""
        for group in self._groups:
            for subscription in group.members():
                if isinstance(subscription.algorithm, MinTopK):
                    return False
        return True

    def engage_shedding(self, stride: int) -> None:
        if stride < 2:
            raise ValueError(f"shedding stride must be >= 2, got {stride}")
        self._shed_stride = stride
        self._admit_counter = 0
        self.knowledge.shedding.engagements += 1

    def disengage_shedding(self) -> Dict[str, object]:
        """Stop shedding; return the accuracy account at disengagement."""
        self._shed_stride = None
        return self.knowledge.shedding.as_dict()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def events(self) -> List[AdaptationEvent]:
        """The adaptation audit log (applied and declined tactics)."""
        return self.knowledge.events()

    def accuracy_report(self) -> Dict[str, object]:
        """Explicit accounting of the only approximate tactic.

        ``exact`` is True iff no object was ever shed — in which case the
        controlled engine's answers are byte-identical to an uncontrolled
        run on the same stream.
        """
        report = self.knowledge.shedding.as_dict()
        report["active_stride"] = self._shed_stride
        return report

    def describe(self) -> Dict[str, object]:
        """Full state summary (CLI JSON output)."""
        return {
            "policy": self.policy.describe(),
            "attached": self.attached,
            "groups": len(self._groups),
            "knowledge": self.knowledge.describe(),
            "accuracy": self.accuracy_report(),
        }
