"""The Knowledge store of the MAPE-K loop: ring-buffered runtime telemetry.

Everything the control plane knows about a running engine lives here, in
bounded structures so an unbounded stream can stay under control forever:

* per-subscription ring buffers of :class:`SlideSample` records (one per
  processed slide: latency, candidate-set size, memory, top score);
* per-subscription ring buffers of :class:`SealSample` records (one per
  partition sealed by the SAP framework feeding that subscription);
* the append-only :class:`AdaptationEvent` log — the audit trail of every
  tactic the planner applied (or deliberately skipped), which the CLI and
  benchmarks surface;
* bookkeeping shared by analyzers and planner: last-adaptation slide per
  subscription (cooldowns) and the load-shedding accuracy account.

The monitor writes, analyzers and planners read, executors append to the
event log; none of them talk to each other directly — the knowledge store
*is* the interface, which is what makes the MAPE stages independently
testable and replaceable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Deque, Dict, List, NamedTuple, Optional

from ..core.metrics import percentile

#: Default capacity of each per-subscription ring buffer.  256 slides of
#: history is enough for every built-in analyzer window while keeping the
#: store O(1) in stream length.
RING_CAPACITY = 256

#: Retained adaptation-log entries.  The log is the audit trail surfaced
#: by the CLI and benchmarks, but it must stay bounded like everything
#: else in the store: a tactic that is planned and declined every few
#: slides on an unbounded stream would otherwise grow it forever.  The
#: total count of logged events stays exact (``events_total``).
EVENT_LOG_CAPACITY = 512

#: Retained periodic metrics snapshots (the observability plane feeds one
#: per analysis tick; see :meth:`Knowledge.add_metrics_snapshot`).
METRICS_SNAPSHOT_CAPACITY = 64


class SlideSample(NamedTuple):
    """Telemetry of one processed slide of one subscription.

    A named tuple, not a dataclass: one is constructed per slide per
    subscription on the monitor's hot path, and tuple construction is what
    keeps the idle-controller overhead in the low single digits.
    """

    subscription: str
    algorithm: str
    slide_index: int
    latency: float
    candidates: int
    memory_bytes: int
    #: Best score of the slide's answer (None for an empty answer); the
    #: drift analyzer compares samples of these across time.
    top_score: Optional[float]
    window_size: int


class SealSample(NamedTuple):
    """One partition sealed by the SAP framework of one subscription."""

    subscription: str
    size: int


@dataclass(frozen=True)
class AdaptationEvent:
    """One entry of the adaptation audit log.

    ``applied`` is False for tactics the planner chose but the executor
    declined (e.g. an algorithm swap whose preconditions failed); the
    reason then lives in ``detail["skipped"]``.
    """

    slide_index: int
    subscription: str
    tactic: str
    trigger: str
    applied: bool
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "slide_index": self.slide_index,
            "subscription": self.subscription,
            "tactic": self.tactic,
            "trigger": self.trigger,
            "applied": self.applied,
            "detail": dict(self.detail),
        }


@dataclass
class SheddingAccount:
    """Explicit accuracy accounting of the load-shedding tactic.

    Shedding drops stream objects *before* they reach any window, so the
    engine's answers become approximate; the account makes the
    approximation auditable: how many objects were admitted versus shed,
    and over how many engagements.
    """

    admitted: int = 0
    shed: int = 0
    engagements: int = 0

    @property
    def shed_fraction(self) -> float:
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "engagements": self.engagements,
            "exact": self.shed == 0,
        }


class Knowledge:
    """Bounded runtime knowledge shared by the MAPE stages."""

    def __init__(self, capacity: int = RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._slides: Dict[str, Deque[SlideSample]] = {}
        self._seals: Dict[str, Deque[SealSample]] = {}
        self._events: Deque[AdaptationEvent] = deque(maxlen=EVENT_LOG_CAPACITY)
        self.events_total = 0
        self._last_adaptation: Dict[str, int] = {}
        self.shedding = SheddingAccount()
        #: Exact per-tactic attempt counts (the event log is bounded, these
        #: are not) — exported as ``repro_tactics_total{tactic=...}``.
        self.tactic_counts: Dict[str, int] = {}
        self._metrics_snapshots: Deque[Dict[str, object]] = deque(
            maxlen=METRICS_SNAPSHOT_CAPACITY
        )

    # ------------------------------------------------------------------
    # Writing (monitor / executor)
    # ------------------------------------------------------------------
    def add_slide(self, sample: SlideSample) -> None:
        ring = self._slides.get(sample.subscription)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._slides[sample.subscription] = ring
        ring.append(sample)

    def add_seal(self, sample: SealSample) -> None:
        ring = self._seals.get(sample.subscription)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._seals[sample.subscription] = ring
        ring.append(sample)

    def log_event(self, event: AdaptationEvent) -> None:
        """Append to the audit log and reset the subscription's cooldown.

        Declined tactics reset the cooldown too: a tactic whose runtime
        preconditions failed should not be retried every analysis pass —
        the same cooldown that prevents rebuild thrash also prevents
        decline spam.
        """
        self._events.append(event)
        self.events_total += 1
        self.tactic_counts[event.tactic] = self.tactic_counts.get(event.tactic, 0) + 1
        self._last_adaptation[event.subscription] = event.slide_index

    def add_metrics_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Retain one periodic observability snapshot (a ``{"ts": ...,
        "metrics": [...]}`` document from the metrics registry), bounded
        by :data:`METRICS_SNAPSHOT_CAPACITY`.  Analyzers may correlate
        engine telemetry with transport/serving metrics through these."""
        self._metrics_snapshots.append(snapshot)

    def metrics_snapshots(self, count: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent ``count`` retained snapshots, oldest first."""
        return self._tail(self._metrics_snapshots, count)

    # ------------------------------------------------------------------
    # Reading (analyzers / planner / reporting)
    # ------------------------------------------------------------------
    def subscriptions(self) -> List[str]:
        return list(self._slides)

    @staticmethod
    def _tail(ring: Deque, count: Optional[int]) -> List:
        """The last ``count`` ring entries, oldest first, in O(count).

        Analyzers read short tails of long rings on every control tick, so
        this walks the deque from its right end instead of copying it.
        """
        if count is None or count >= len(ring):
            return list(ring)
        tail = list(islice(reversed(ring), count))
        tail.reverse()
        return tail

    def slides(self, subscription: str, count: Optional[int] = None) -> List[SlideSample]:
        """The most recent ``count`` slide samples, oldest first."""
        ring = self._slides.get(subscription)
        if not ring:
            return []
        return self._tail(ring, count)

    def seals(self, subscription: str, count: Optional[int] = None) -> List[SealSample]:
        ring = self._seals.get(subscription)
        if not ring:
            return []
        return self._tail(ring, count)

    def sample_count(self, subscription: str) -> int:
        ring = self._slides.get(subscription)
        return len(ring) if ring else 0

    def latest_slide_index(self, subscription: str) -> Optional[int]:
        ring = self._slides.get(subscription)
        return ring[-1].slide_index if ring else None

    def latency_percentile(
        self, subscription: str, fraction: float, window: int
    ) -> float:
        """Percentile of the last ``window`` slide latencies (0.0 if none)."""
        recent = self.slides(subscription, window)
        if not recent:
            return 0.0
        return percentile([s.latency for s in recent], fraction)

    def top_score_series(
        self, subscription: str, count: Optional[int] = None
    ) -> List[float]:
        """Best-score-per-slide history, oldest first, Nones dropped."""
        return [
            s.top_score for s in self.slides(subscription, count) if s.top_score is not None
        ]

    # ------------------------------------------------------------------
    # Adaptation log
    # ------------------------------------------------------------------
    def events(self) -> List[AdaptationEvent]:
        """The retained audit log, oldest first (bounded; see
        :data:`EVENT_LOG_CAPACITY` and :attr:`events_total`)."""
        return list(self._events)

    def applied_events(self) -> List[AdaptationEvent]:
        return [event for event in self._events if event.applied]

    def last_adaptation_slide(self, subscription: str) -> Optional[int]:
        """Slide of the last *attempted* tactic (applied or declined)."""
        return self._last_adaptation.get(subscription)

    def describe(self) -> Dict[str, object]:
        """Summary record used by the CLI's JSON output."""
        return {
            "subscriptions": {
                name: {
                    "samples": self.sample_count(name),
                    "latest_slide": self.latest_slide_index(name),
                    "seals": len(self._seals.get(name, ())),
                }
                for name in self._slides
            },
            "events": [event.as_dict() for event in self._events],
            "events_total": self.events_total,
            "shedding": self.shedding.as_dict(),
        }
