"""The Execute stage: apply planned tactics to a running engine.

Mechanism only, no judgement: the executor receives the planner's actions
and carries them out, logging every outcome to the knowledge store's
adaptation event log.  Tactics that reconfigure query execution build
fresh algorithm instances and hand them to
:meth:`repro.engine.group.QueryGroup.rebuild`, which drains the group at
the current slide boundary and replays the live window state into the new
pipeline — so a swap is answer-preserving by construction.  Load shedding
is an engine-level valve operated through the controller, with its cost
recorded in the knowledge store's shedding account.

A tactic whose runtime preconditions fail (for example an algorithm swap
to MinTopK when the window's arrival orders are not contiguous, which its
position arithmetic requires) is *declined*, not errored: the event log
records it with ``applied=False`` and the engine keeps running untouched.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..baselines.mintopk import MinTopK
from ..core.framework import SAPTopK
from ..core.interface import ContinuousTopKAlgorithm
from ..registry import create_algorithm
from .knowledge import AdaptationEvent, Knowledge
from .planner import Action, _PARTITIONER_FAMILY


class Executor:
    """Applies tactics; every outcome lands in the adaptation event log."""

    def __init__(self, knowledge: Knowledge) -> None:
        self.knowledge = knowledge

    # ------------------------------------------------------------------
    def execute(self, group, actions: List[Action], controller) -> List[AdaptationEvent]:
        """Apply one tick's actions for one group.

        All rebuild-type tactics of the tick are folded into a single
        :meth:`QueryGroup.rebuild` call, so co-triggered swaps share one
        window replay.  Engine-level tactics (shedding) go through the
        controller's valve.
        """
        slide_index = group.last_slide_index() or 0
        events: List[AdaptationEvent] = []
        replacements: Dict[str, ContinuousTopKAlgorithm] = {}
        rebuild_actions: List[Tuple[Action, Dict[str, object]]] = []

        for action in actions:
            kind = action.tactic.kind
            if kind == "load-shed":
                stride = int(action.tactic.params["stride"])
                controller.engage_shedding(stride)
                events.append(
                    self._log(slide_index, action, True, {"stride": stride})
                )
                continue
            if kind == "load-recover":
                account = controller.disengage_shedding()
                events.append(self._log(slide_index, action, True, account))
                continue
            replacement, detail, reason = self._build_replacement(group, action)
            if replacement is None:
                events.append(
                    self._log(slide_index, action, False, {"skipped": reason})
                )
                continue
            replacements[action.subscription_name] = replacement
            rebuild_actions.append((action, detail))

        if replacements:
            started = time.perf_counter()
            rebuild_seconds = group.rebuild(replacements)
            total = time.perf_counter() - started
            for action, detail in rebuild_actions:
                detail = dict(detail)
                detail["rebuild_seconds"] = rebuild_seconds
                detail["executor_seconds"] = total
                events.append(self._log(slide_index, action, True, detail))
            controller.rewatch(group)
        return events

    # ------------------------------------------------------------------
    def _build_replacement(
        self, group, action: Action
    ) -> Tuple[Optional[ContinuousTopKAlgorithm], Dict[str, object], str]:
        """(replacement, detail, decline-reason) for one rebuild tactic."""
        tactic = action.tactic
        algorithm = action.subscription.algorithm
        if not self._rebuild_safe(group, action.subscription):
            # Rebuilding dissolves the subscription's shared plan, which
            # collaterally respawns its plan siblings from live window
            # state — MinTopK siblings need contiguous arrival orders for
            # that, just like a direct swap to MinTopK does.
            return (
                None,
                {},
                "a MinTopK plan sibling cannot adopt this window "
                "(arrival orders are not contiguous slide-aligned)",
            )
        if tactic.kind == "swap-partitioner":
            target = str(tactic.params["to"])
            if not isinstance(algorithm, SAPTopK):
                return None, {}, "not a SAP subscription"
            family = _PARTITIONER_FAMILY[target]
            replacement = algorithm.with_partitioner(family())
            return (
                replacement,
                {"from": algorithm.partitioner.name, "to": target},
                "",
            )
        if tactic.kind == "retune-eta":
            if not isinstance(algorithm, SAPTopK):
                return None, {}, "not a SAP subscription"
            partitioner = algorithm.partitioner
            if not hasattr(partitioner, "retuned"):
                return None, {}, f"partitioner {partitioner.name} has no eta"
            target_scale = float(tactic.params["eta_scale"])
            replacement = algorithm.with_partitioner(partitioner.retuned(target_scale))
            return (
                replacement,
                {"from_eta_scale": partitioner.eta_scale, "to_eta_scale": target_scale},
                "",
            )
        if tactic.kind == "swap-algorithm":
            target = str(tactic.params["to"])
            query = action.subscription.query
            if target == "MinTopK" and not self._mintopk_adoptable(group):
                return (
                    None,
                    {},
                    "window arrival orders are not contiguous slide-aligned",
                )
            try:
                replacement = create_algorithm(target, query)
            except (KeyError, ValueError, TypeError) as error:
                return None, {}, f"cannot build {target!r}: {error}"
            return replacement, {"from": algorithm.name, "to": target}, ""
        return None, {}, f"unknown tactic {tactic.kind!r}"

    def _rebuild_safe(self, group, subscription) -> bool:
        """True when rebuilding ``subscription`` cannot corrupt a sibling.

        A rebuild dissolves every plan containing the subscription and
        respawns the plan's other members from the live window; if any of
        those members runs MinTopK, the window must satisfy MinTopK's
        adoption precondition even though the tactic itself targets a
        different member.
        """
        for plan in group.plans():
            members = plan.subscriptions()
            if subscription not in members:
                continue
            if any(
                member is not subscription and isinstance(member.algorithm, MinTopK)
                for member in members
            ):
                return self._mintopk_adoptable(group)
        return True

    @staticmethod
    def _mintopk_adoptable(group) -> bool:
        """MinTopK derives window positions from arrival orders: adopting
        it mid-stream requires the live window to be exactly the arrival
        orders ``[index·s, index·s + n - 1]``."""
        index = group.last_slide_index()
        if index is None:
            return False
        contents = group.window_contents()
        if len(contents) != group.n:
            return False
        first, last = contents[0].t, contents[-1].t
        return first == index * group.s and last - first == group.n - 1

    # ------------------------------------------------------------------
    def _log(
        self,
        slide_index: int,
        action: Action,
        applied: bool,
        detail: Dict[str, object],
    ) -> AdaptationEvent:
        merged = dict(action.tactic.params)
        merged.update(detail)
        event = AdaptationEvent(
            slide_index=slide_index,
            subscription=action.subscription_name,
            tactic=action.tactic.kind,
            trigger=action.trigger,
            applied=applied,
            detail=merged,
        )
        self.knowledge.log_event(event)
        return event
