"""The Monitor stage: taps engine telemetry into the knowledge store.

The monitor is the duck-typed sink a :class:`~repro.engine.group.QueryGroup`
calls after every member slide (``record_slide``), plus the seal listener
installed on SAP instances so partition-sealing activity reaches the
knowledge store too.  It performs no analysis — it only converts what the
engine already measured (the subscription's last-slide latency, candidate
count, and memory were sampled by the metrics collector during the slide)
into bounded :class:`~repro.control.knowledge.SlideSample` /
:class:`~repro.control.knowledge.SealSample` records.  Keeping the monitor
read-mostly is what keeps controller overhead in the low single digits.
"""

from __future__ import annotations

from ..core.framework import SAPTopK
from .knowledge import Knowledge, SealSample, SlideSample


class Monitor:
    """Writes per-slide and per-seal telemetry into a knowledge store."""

    def __init__(self, knowledge: Knowledge) -> None:
        self.knowledge = knowledge

    # ------------------------------------------------------------------
    def watch(self, subscription) -> None:
        """Install the seal tap on a subscription's algorithm (idempotent).

        Only the SAP framework seals partitions; other algorithms simply
        have no seal telemetry.  Idempotency is keyed on the listener slot
        itself (not on instance identity, which ``id()`` reuse would
        break), so the tap reliably follows the live instance after the
        control plane swaps the algorithm.
        """
        algorithm = subscription.algorithm
        if not isinstance(algorithm, SAPTopK) or algorithm.seal_listener is not None:
            return
        name = subscription.name
        algorithm.seal_listener = lambda partition: self.knowledge.add_seal(
            SealSample(subscription=name, size=len(partition))
        )

    def unwatch(self, subscription) -> None:
        """Remove the seal tap (controller detach): telemetry must stop."""
        algorithm = subscription.algorithm
        if isinstance(algorithm, SAPTopK):
            algorithm.seal_listener = None

    # ------------------------------------------------------------------
    # QueryGroup telemetry sink protocol
    # ------------------------------------------------------------------
    def record_slide(self, group, subscription, event, result) -> None:
        """Record one processed slide of one subscription.

        Hot path: one call per slide per controlled subscription.  Reads
        the values the metrics collector already sampled during the slide
        (falling back to the algorithm when metrics are disabled) instead
        of recomputing anything.
        """
        self.watch(subscription)
        sample = subscription.last_slide_sample()
        objects = result.objects
        self.knowledge.add_slide(
            SlideSample(
                subscription.name,
                subscription.algorithm.name,
                event.index,
                sample["latency"],
                sample["candidates"],
                sample["memory_bytes"],
                objects[0].score if objects else None,
                group.window_size(),
            )
        )
