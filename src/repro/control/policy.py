"""Declarative adaptation policies: what to watch and which tactic to take.

A policy is plain data — loadable from a JSON file — so that adaptation
behaviour can be changed without touching code.  It has four parts:

``analyzers``
    Configuration of the symptom detectors (latency / candidates / drift);
    omit a section to disable that detector.  The latency analyzer
    additionally needs the top-level ``latency_budget_seconds``.

``rules``
    An ordered list mapping symptom kinds to tactics.  For each symptom
    the planner walks the rules top to bottom and takes the first rule
    that matches *and* whose tactic is applicable to the subscription
    (e.g. an η retune only applies to SAP with a dynamic partitioner).

``cooldown_slides``
    Minimum number of slides between two applied tactics on the same
    subscription, so the loop cannot thrash.

``load_shedding``
    Opt-in gate for the only approximate tactic.  ``enabled`` defaults to
    False — a policy must explicitly accept approximation — and
    ``max_fraction`` bounds the fraction of the stream a ``load-shed``
    rule may drop.

The file format (see ``examples/control_policy.json``)::

    {
      "latency_budget_seconds": 0.01,
      "cooldown_slides": 64,
      "analyzers": {
        "latency":    {"percentile": 0.95, "window": 32, "min_samples": 16},
        "candidates": {"factor": 3.0, "window": 32},
        "drift":      {"alpha": 0.01, "window": 16}
      },
      "rules": [
        {"when": "score-drift",       "tactic": "swap-partitioner", "to": "enhanced-dynamic"},
        {"when": "candidate-blowup",  "tactic": "retune-eta",       "scale": 1.5},
        {"when": "latency-violation", "tactic": "load-shed",        "stride": 8}
      ],
      "load_shedding": {"enabled": false, "max_fraction": 0.25}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .analyzers import (
    Analyzer,
    CandidateBlowupAnalyzer,
    LatencyBudgetAnalyzer,
    ScoreDriftAnalyzer,
)

#: Tactic names a rule may use.  The first four act on one subscription
#: inside an engine; the last two act on the sharded cluster itself and
#: are only planned by :class:`repro.cluster.autoscale.ShardAutoscaler`
#: (an engine-attached controller ignores them).
TACTICS = (
    "swap-partitioner",
    "retune-eta",
    "swap-algorithm",
    "load-shed",
    "spawn-shard",
    "retire-shard",
)

#: Default configuration of the latency analyzer, shared by
#: :meth:`Policy.default`, the CLI's ``--latency-budget`` override, and
#: the benchmark's quiet policy (copy before mutating).
DEFAULT_LATENCY_ANALYZER = {"percentile": 0.95, "window": 32, "min_samples": 16}

#: Partitioner families addressable by the swap-partitioner tactic.
PARTITIONER_TARGETS = ("equal", "dynamic", "enhanced-dynamic")


@dataclass(frozen=True)
class Tactic:
    """One adaptation action, fully parameterised."""

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        if not self.params:
            return self.kind
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class Rule:
    """``when`` a symptom kind fires, take ``tactic``."""

    when: str
    tactic: Tactic

    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "Rule":
        data = dict(raw)
        try:
            when = data.pop("when")
            kind = data.pop("tactic")
        except KeyError as missing:
            raise ValueError(f"a rule needs both 'when' and 'tactic': {raw}") from missing
        if kind not in TACTICS:
            raise ValueError(f"unknown tactic {kind!r}; known: {TACTICS}")
        if kind == "swap-partitioner":
            target = data.get("to")
            if target not in PARTITIONER_TARGETS:
                raise ValueError(
                    f"swap-partitioner needs 'to' in {PARTITIONER_TARGETS}, got {target!r}"
                )
        if kind == "retune-eta":
            scale = data.get("scale")
            if not isinstance(scale, (int, float)) or scale <= 0:
                raise ValueError(f"retune-eta needs a positive 'scale', got {scale!r}")
        if kind == "swap-algorithm" and not data.get("to"):
            raise ValueError("swap-algorithm needs a 'to' algorithm name")
        if kind == "load-shed":
            stride = data.get("stride", 8)
            if not isinstance(stride, int) or stride < 2:
                raise ValueError(f"load-shed 'stride' must be an int >= 2, got {stride!r}")
            data["stride"] = stride
        return Rule(when=str(when), tactic=Tactic(kind=str(kind), params=data))


@dataclass(frozen=True)
class LoadSheddingConfig:
    enabled: bool = False
    max_fraction: float = 0.25

    @staticmethod
    def from_dict(raw: Optional[Dict[str, object]]) -> "LoadSheddingConfig":
        if not raw:
            return LoadSheddingConfig()
        fraction = float(raw.get("max_fraction", 0.25))
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"max_fraction must be in (0, 1), got {fraction}")
        return LoadSheddingConfig(
            enabled=bool(raw.get("enabled", False)), max_fraction=fraction
        )


@dataclass
class Policy:
    """A fully resolved adaptation policy."""

    rules: List[Rule] = field(default_factory=list)
    cooldown_slides: int = 64
    #: Run the analyzers every this-many slides per group (1 = every slide
    #: boundary).  Analysis windows span dozens of slides, so a small
    #: stride loses nothing while keeping idle-controller overhead low.
    analysis_interval_slides: int = 8
    latency_budget_seconds: Optional[float] = None
    analyzer_config: Dict[str, Dict[str, object]] = field(default_factory=dict)
    load_shedding: LoadSheddingConfig = field(default_factory=LoadSheddingConfig)

    # ------------------------------------------------------------------
    def build_analyzers(self) -> List[Analyzer]:
        """Instantiate the configured symptom detectors."""
        analyzers: List[Analyzer] = []
        latency = self.analyzer_config.get("latency")
        if latency is not None and self.latency_budget_seconds is not None:
            analyzers.append(
                LatencyBudgetAnalyzer(self.latency_budget_seconds, **latency)
            )
        candidates = self.analyzer_config.get("candidates")
        if candidates is not None:
            analyzers.append(CandidateBlowupAnalyzer(**candidates))
        drift = self.analyzer_config.get("drift")
        if drift is not None:
            analyzers.append(ScoreDriftAnalyzer(**drift))
        return analyzers

    def rules_for(self, symptom_kind: str) -> List[Rule]:
        return [rule for rule in self.rules if rule.when == symptom_kind]

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "Policy":
        known = {
            "rules",
            "cooldown_slides",
            "analysis_interval_slides",
            "latency_budget_seconds",
            "analyzers",
            "load_shedding",
        }
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(f"unknown policy keys: {unknown}; known: {sorted(known)}")
        cooldown = int(raw.get("cooldown_slides", 64))
        if cooldown < 0:
            raise ValueError(f"cooldown_slides must be >= 0, got {cooldown}")
        interval = int(raw.get("analysis_interval_slides", 8))
        if interval < 1:
            raise ValueError(f"analysis_interval_slides must be >= 1, got {interval}")
        budget = raw.get("latency_budget_seconds")
        if budget is not None:
            budget = float(budget)
            if budget <= 0:
                raise ValueError(f"latency_budget_seconds must be positive, got {budget}")
        analyzers_raw = raw.get("analyzers", {})
        if not isinstance(analyzers_raw, dict):
            raise ValueError("'analyzers' must be a mapping of detector sections")
        rules_raw = raw.get("rules", [])
        if not isinstance(rules_raw, Sequence) or isinstance(rules_raw, (str, bytes)):
            raise ValueError("'rules' must be a list of rule objects")
        return Policy(
            rules=[Rule.from_dict(rule) for rule in rules_raw],
            cooldown_slides=cooldown,
            analysis_interval_slides=interval,
            latency_budget_seconds=budget,
            analyzer_config={k: dict(v) for k, v in analyzers_raw.items()},
            load_shedding=LoadSheddingConfig.from_dict(raw.get("load_shedding")),
        )

    @staticmethod
    def from_file(path: str) -> "Policy":
        with open(path, "r", encoding="utf-8") as handle:
            return Policy.from_dict(json.load(handle))

    @staticmethod
    def default(latency_budget_seconds: Optional[float] = None) -> "Policy":
        """The built-in policy: react to drift and candidate blowup with
        exact tactics; load shedding stays off (answers stay exact).

        The drift rule swaps a dynamic-partitioner SAP query to the equal
        partitioner: the WRT-driven sizing pays off when the score
        distribution is stable enough for its statistical tests to buy
        candidate savings, and under regime switching it keeps paying the
        test cost without the savings (measured in ``BENCH_control.json``).
        Queries already on the equal partitioner are left alone — a policy
        preferring the opposite direction just sets ``"to"`` accordingly.

        Passing ``latency_budget_seconds`` enables the latency analyzer
        *and* a rule consuming its symptom (swap to the cheap equal
        partitioner), so the budget actually drives adaptation instead of
        detecting violations nobody reacts to.
        """
        rules = [
            Rule(
                when="score-drift",
                tactic=Tactic("swap-partitioner", {"to": "equal"}),
            ),
            Rule(when="candidate-blowup", tactic=Tactic("retune-eta", {"scale": 1.5})),
        ]
        analyzer_config: Dict[str, Dict[str, object]] = {
            "candidates": {"factor": 3.0, "window": 32},
            "drift": {"alpha": 0.01, "window": 16},
        }
        if latency_budget_seconds is not None:
            analyzer_config["latency"] = dict(DEFAULT_LATENCY_ANALYZER)
            rules.append(
                Rule(
                    when="latency-violation",
                    tactic=Tactic("swap-partitioner", {"to": "equal"}),
                )
            )
        return Policy(
            rules=rules,
            latency_budget_seconds=latency_budget_seconds,
            analyzer_config=analyzer_config,
        )

    def describe(self) -> Dict[str, object]:
        return {
            "cooldown_slides": self.cooldown_slides,
            "analysis_interval_slides": self.analysis_interval_slides,
            "latency_budget_seconds": self.latency_budget_seconds,
            "analyzers": {k: dict(v) for k, v in self.analyzer_config.items()},
            "rules": [
                {"when": rule.when, "tactic": rule.tactic.describe()}
                for rule in self.rules
            ],
            "load_shedding": {
                "enabled": self.load_shedding.enabled,
                "max_fraction": self.load_shedding.max_fraction,
            },
        }
