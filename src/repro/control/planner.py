"""The Plan stage: map symptoms to applicable tactics under a policy.

The planner owns *selection*, not mechanism: given the symptoms of one
control tick it walks the policy's ordered rules and emits
:class:`Action` records for the executor.  A rule only produces an action
when its tactic is applicable to the subscription it would act on — an η
retune needs a dynamic partitioner, an algorithm swap must actually change
the algorithm, load shedding must be explicitly enabled — and when the
subscription is outside its adaptation cooldown, so a persistent symptom
cannot thrash the engine with back-to-back rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.framework import SAPTopK
from ..partitioning.dynamic import DynamicPartitioner
from ..partitioning.enhanced import EnhancedDynamicPartitioner
from ..partitioning.equal import EqualPartitioner
from ..registry import create_algorithm
from .analyzers import Symptom
from .knowledge import Knowledge
from .policy import Policy, Rule, Tactic

#: Bounds of the η-scale retune: beyond these the reference interval is
#: either too small for the rank-sum test to mean anything or so large the
#: partitioner degenerates to a single partition per window.
ETA_SCALE_MIN = 0.25
ETA_SCALE_MAX = 4.0

#: Partitioner family addressed by each swap-partitioner target.  Exact
#: type comparison matters: the enhanced partitioner subclasses the
#: dynamic one but is a different family.
_PARTITIONER_FAMILY = {
    "equal": EqualPartitioner,
    "dynamic": DynamicPartitioner,
    "enhanced-dynamic": EnhancedDynamicPartitioner,
}


@dataclass(frozen=True)
class Action:
    """One planned tactic, bound to the subscription it acts on."""

    subscription: object  # engine Subscription handle
    tactic: Tactic
    trigger: str
    evidence: Dict[str, object] = field(default_factory=dict)

    @property
    def subscription_name(self) -> str:
        return self.subscription.name


class Planner:
    """Chooses tactics from the declarative policy."""

    def __init__(self, policy: Policy) -> None:
        self.policy = policy

    # ------------------------------------------------------------------
    def plan(
        self,
        group,
        symptoms: List[Symptom],
        knowledge: Knowledge,
        shedding_active: bool = False,
        shed_allowed: bool = True,
    ) -> List[Action]:
        """Actions for one group's control tick, at most one per member.

        ``shed_allowed`` is the engine-wide gate computed by the
        controller: stride shedding gaps the arrival orders, which breaks
        algorithms that derive window positions from them (MinTopK), so
        the valve must stay shut while any such query is live.
        """
        members = {sub.name: sub for sub in group.members()}
        actions: List[Action] = []
        planned: set = set()
        # Shedding is an engine-level valve: once one symptom plans it in
        # this tick, further load-shed rules are already satisfied.
        shed_planned = shedding_active or not shed_allowed
        for symptom in symptoms:
            subscription = members.get(symptom.subscription)
            if subscription is None or symptom.subscription in planned:
                continue
            if self._in_cooldown(symptom.subscription, knowledge):
                continue
            for rule in self.policy.rules_for(symptom.kind):
                tactic = self._applicable(rule, subscription, shed_planned)
                if tactic is None:
                    continue
                if tactic.kind == "load-shed":
                    shed_planned = True
                actions.append(
                    Action(
                        subscription=subscription,
                        tactic=tactic,
                        trigger=symptom.kind,
                        evidence=dict(symptom.evidence),
                    )
                )
                planned.add(symptom.subscription)
                break
        return actions

    def plan_recovery(
        self, knowledge: Knowledge, shedding_active: bool
    ) -> Optional[Action]:
        """Disengage load shedding once latencies are back under budget.

        Recovery is planned engine-wide (shedding is an engine-level
        valve): every monitored subscription must sit below 80% of the
        latency budget at the configured percentile.
        """
        if not shedding_active:
            return None
        budget = self.policy.latency_budget_seconds
        if budget is None:
            return None
        config = self.policy.analyzer_config.get("latency", {})
        fraction = float(config.get("percentile", 0.95))
        window = int(config.get("window", 32))
        names = knowledge.subscriptions()
        if not names:
            return None
        for name in names:
            if knowledge.latency_percentile(name, fraction, window) > 0.8 * budget:
                return None
        return Action(
            subscription=_EngineWide(),
            tactic=Tactic("load-recover"),
            trigger="latency-recovered",
            evidence={"budget_seconds": budget, "percentile": fraction},
        )

    # ------------------------------------------------------------------
    def _in_cooldown(self, name: str, knowledge: Knowledge) -> bool:
        last = knowledge.last_adaptation_slide(name)
        if last is None:
            return False
        latest = knowledge.latest_slide_index(name)
        if latest is None:
            return True
        return latest - last < self.policy.cooldown_slides

    def _applicable(
        self, rule: Rule, subscription, shedding_active: bool
    ) -> Optional[Tactic]:
        """The rule's tactic, parameters resolved, or None if inapplicable."""
        tactic = rule.tactic
        algorithm = subscription.algorithm
        if tactic.kind == "swap-partitioner":
            if not isinstance(algorithm, SAPTopK):
                return None
            family = _PARTITIONER_FAMILY[tactic.params["to"]]
            if type(algorithm.partitioner) is family:
                return None
            return tactic
        if tactic.kind == "retune-eta":
            if not isinstance(algorithm, SAPTopK):
                return None
            partitioner = algorithm.partitioner
            if not isinstance(partitioner, DynamicPartitioner):
                return None
            scale = float(tactic.params["scale"])
            target = min(ETA_SCALE_MAX, max(ETA_SCALE_MIN, partitioner.eta_scale * scale))
            if abs(target - partitioner.eta_scale) < 1e-9:
                return None  # already pinned at the bound
            return Tactic("retune-eta", {"scale": scale, "eta_scale": target})
        if tactic.kind == "swap-algorithm":
            target = str(tactic.params["to"])
            if target == "MinTopK" and subscription.query.time_based:
                return None
            # Build the candidate replacement and compare display names
            # (which encode the resolved configuration): a swap must
            # actually change the algorithm, otherwise a persistent
            # symptom would trigger a full-window rebuild every cooldown.
            try:
                replacement = create_algorithm(target, subscription.query)
            except (KeyError, ValueError, TypeError):
                return None
            if replacement.name == algorithm.name:
                return None
            return tactic
        if tactic.kind == "load-shed":
            shedding = self.policy.load_shedding
            if not shedding.enabled or shedding_active:
                return None
            stride = int(tactic.params.get("stride", 8))
            if 1.0 / stride > shedding.max_fraction:
                return None
            return Tactic("load-shed", {"stride": stride})
        return None


class _EngineWide:
    """Placeholder subscription for engine-level actions (shedding)."""

    name = "<engine>"
