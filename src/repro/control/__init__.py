"""Adaptive runtime control plane: a MAPE-K loop over live engines.

The engine executes queries; this package decides *how* they should be
executed as the stream evolves.  A :class:`AdaptiveController` attached to
a :class:`~repro.engine.StreamEngine` monitors per-slide telemetry into a
ring-buffered :class:`Knowledge` store, analyzes it for latency-budget
violations, candidate-set blowup, and score-distribution drift, plans
tactics from a declarative :class:`Policy` (swap partitioner, retune η,
swap algorithm, bounded load shedding), and executes them against the
running engine at slide boundaries — draining a query group and rebuilding
its execution plan from live window state, so every exact-mode tactic is
answer-preserving.

See ``examples/adaptive_control.py`` for a runnable walkthrough and
``examples/control_policy.json`` for the policy file format.
"""

from .analyzers import (
    Analyzer,
    CandidateBlowupAnalyzer,
    LatencyBudgetAnalyzer,
    ScoreDriftAnalyzer,
    ShardPressure,
    ShardPressureSample,
    Symptom,
)
from .controller import AdaptiveController
from .executor import Executor
from .knowledge import AdaptationEvent, Knowledge, SealSample, SlideSample
from .monitor import Monitor
from .planner import Action, Planner
from .policy import LoadSheddingConfig, Policy, Rule, Tactic

__all__ = [
    "AdaptiveController",
    "AdaptationEvent",
    "Action",
    "Analyzer",
    "CandidateBlowupAnalyzer",
    "Executor",
    "Knowledge",
    "LatencyBudgetAnalyzer",
    "LoadSheddingConfig",
    "Monitor",
    "Planner",
    "Policy",
    "Rule",
    "ScoreDriftAnalyzer",
    "ShardPressure",
    "ShardPressureSample",
    "SealSample",
    "SlideSample",
    "Symptom",
    "Tactic",
]
