"""MinTopK (reference [25] of the paper, Yang et al., EDBT 2011).

MinTopK exploits the slide granularity ``s`` of a count-based window: at
any moment the stream objects seen so far overlap a bounded number of
current/future window positions, and only the top-k of the objects already
known for each such position can ever appear in its answer.  The algorithm
therefore maintains one *predicted result set* per overlapping window
position, all sharing a common candidate pool (the "super-top-k list" of
the original paper), plus the ``lbp`` lower-bound pointer of every position
(here: the minimum of its predicted set).

A newly arrived object is compared against the lower bound of every window
position it participates in: positions it beats adopt it and evict their
previous k-th object; an object no longer referenced by any position is
dropped from the candidate pool.  When a window position becomes current,
its predicted set *is* the exact answer, because by then every object of
that window has been seen.

The per-arrival cost is ``O(n/s + log k)``, matching the analysis in
Section 2.1 of the SAP paper: cheap when ``s`` is large, increasingly
expensive as ``s`` shrinks.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from ..core.exceptions import InvalidQueryError
from ..core.interface import (
    OBJECT_FOOTPRINT_BYTES,
    POINTER_FOOTPRINT_BYTES,
    ContinuousTopKAlgorithm,
)
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.window import SlideEvent

RankKey = Tuple[float, int]


class MinTopK(ContinuousTopKAlgorithm):
    """Predicted-result-set maintenance for count-based sliding windows."""

    name = "MinTopK"

    def __init__(self, query: TopKQuery) -> None:
        super().__init__(query)
        if query.time_based:
            raise InvalidQueryError("MinTopK requires a count-based window")
        # Predicted result set per window position: a min-heap of rank keys.
        self._predicted: Dict[int, List[Tuple[RankKey, StreamObject]]] = {}
        # Shared candidate pool: rank key -> (object, reference count).
        self._pool: Dict[RankKey, List] = {}
        self._next_report = 0

    # ------------------------------------------------------------------
    def process_slide(self, event: SlideEvent) -> TopKResult:
        for obj in event.arrivals:
            self._insert(obj)
        result = self._report(event)
        self._next_report = event.index + 1
        return result

    # ------------------------------------------------------------------
    def _windows_of(self, t: int) -> range:
        """Window positions that contain the object with arrival order ``t``.

        Position ``i`` covers arrival orders ``[i·s, i·s + n − 1]``.
        """
        n, s = self.query.n, self.query.s
        earliest = -((n - 1 - t) // s)  # integer ceil((t - n + 1) / s)
        first = max(self._next_report, earliest)
        last = t // s
        return range(first, last + 1)

    def _insert(self, obj: StreamObject) -> None:
        key = obj.rank_key
        k = self.query.k
        for window_index in self._windows_of(obj.t):
            heap = self._predicted.setdefault(window_index, [])
            if len(heap) < k:
                heapq.heappush(heap, (key, obj))
                self._retain(obj)
            elif key > heap[0][0]:
                evicted_key, _ = heapq.heapreplace(heap, (key, obj))
                self._retain(obj)
                self._release(evicted_key)

    def _retain(self, obj: StreamObject) -> None:
        record = self._pool.get(obj.rank_key)
        if record is None:
            self._pool[obj.rank_key] = [obj, 1]
        else:
            record[1] += 1

    def _release(self, key: RankKey) -> None:
        record = self._pool.get(key)
        if record is None:
            return
        record[1] -= 1
        if record[1] <= 0:
            del self._pool[key]

    # ------------------------------------------------------------------
    def _report(self, event: SlideEvent) -> TopKResult:
        heap = self._predicted.pop(event.index, [])
        objects = [obj for _, obj in heap]
        for key, _ in heap:
            self._release(key)
        return TopKResult.from_objects(event.index, event.window_end, objects)

    # ------------------------------------------------------------------
    def candidate_count(self) -> int:
        return len(self._pool)

    def memory_bytes(self) -> int:
        predicted_refs = sum(len(heap) for heap in self._predicted.values())
        lbp_pointers = len(self._predicted)
        return (
            len(self._pool) * OBJECT_FOOTPRINT_BYTES
            + (predicted_refs + lbp_pointers) * POINTER_FOOTPRINT_BYTES
        )
