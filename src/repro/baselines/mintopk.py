"""MinTopK (reference [25] of the paper, Yang et al., EDBT 2011).

MinTopK exploits the slide granularity ``s`` of a count-based window: at
any moment the stream objects seen so far overlap a bounded number of
current/future window positions, and only the top-k of the objects already
known for each such position can ever appear in its answer.  The algorithm
therefore maintains one *predicted result set* per overlapping window
position, all sharing a common candidate pool (the "super-top-k list" of
the original paper), plus the ``lbp`` lower-bound pointer of every position
(here: the minimum of its predicted set).

A newly arrived object is compared against the lower bound of every window
position it participates in: positions it beats adopt it and evict their
previous k-th object; an object no longer referenced by any position is
dropped from the candidate pool.  When a window position becomes current,
its predicted set *is* the exact answer, because by then every object of
that window has been seen.

The per-arrival cost is ``O(n/s + log k)``, matching the analysis in
Section 2.1 of the SAP paper: cheap when ``s`` is large, increasingly
expensive as ``s`` shrinks.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Sequence, Tuple

from ..core.exceptions import AlgorithmStateError, InvalidQueryError
from ..core.interface import (
    OBJECT_FOOTPRINT_BYTES,
    POINTER_FOOTPRINT_BYTES,
    ContinuousTopKAlgorithm,
)
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.shared import CoreSharedPlan, SharedCoreMember
from ..core.window import SlideEvent

RankKey = Tuple[float, int]


class MinTopK(SharedCoreMember, ContinuousTopKAlgorithm):
    """Predicted-result-set maintenance for count-based sliding windows."""

    name = "MinTopK"

    def __init__(self, query: TopKQuery) -> None:
        super().__init__(query)
        if query.time_based:
            raise InvalidQueryError("MinTopK requires a count-based window")
        # Predicted result set per window position: a min-heap of rank keys.
        self._predicted: Dict[int, List[Tuple[RankKey, StreamObject]]] = {}
        # Shared candidate pool: rank key -> (object, reference count).
        self._pool: Dict[RankKey, List] = {}
        self._next_report = 0

    # ------------------------------------------------------------------
    # Shared-slide lifecycle: a window position's predicted top-k_max set
    # contains the true top-k of that position for every k <= k_max (both
    # are exact top-k of the same already-seen objects), so one shared
    # MinTopK core serves all co-windowed MinTopK queries; members slice
    # their prefix out of the position's answer when it becomes current
    # (the mechanics live in SharedCoreMember / CoreSharedPlan).
    # ------------------------------------------------------------------
    def shared_plan_key(self) -> Hashable:
        return ("MinTopK",)

    def build_shared_plan(self, subscriptions: Sequence[object]) -> "MinTopKSharedPlan":
        return MinTopKSharedPlan(subscriptions)

    def _sharing_started(self) -> bool:
        return bool(self._pool or self._predicted)

    def _local_candidate_count(self) -> int:
        return len(self._pool)

    def _local_memory_bytes(self) -> int:
        predicted_refs = sum(len(heap) for heap in self._predicted.values())
        lbp_pointers = len(self._predicted)
        return (
            len(self._pool) * OBJECT_FOOTPRINT_BYTES
            + (predicted_refs + lbp_pointers) * POINTER_FOOTPRINT_BYTES
        )

    # ------------------------------------------------------------------
    def fast_forward(self, slide_index: int) -> None:
        """Align the predicted-result-set clock for a mid-stream rebuild.

        Without this, replaying a full window as one synthetic event would
        build predicted sets for window positions that were already
        reported (and will never be popped), leaking pool entries.
        """
        if self._pool or self._predicted:
            raise AlgorithmStateError(
                "cannot fast-forward a MinTopK instance that has state"
            )
        self._next_report = slide_index

    # ------------------------------------------------------------------
    def process_slide(self, event: SlideEvent) -> TopKResult:
        for obj in event.arrivals:
            self._insert(obj)
        result = self._report(event)
        self._next_report = event.index + 1
        return result

    # ------------------------------------------------------------------
    def _windows_of(self, t: int) -> range:
        """Window positions that contain the object with arrival order ``t``.

        Position ``i`` covers arrival orders ``[i·s, i·s + n − 1]``.
        """
        n, s = self.query.n, self.query.s
        earliest = -((n - 1 - t) // s)  # integer ceil((t - n + 1) / s)
        first = max(self._next_report, earliest)
        last = t // s
        return range(first, last + 1)

    def _insert(self, obj: StreamObject) -> None:
        key = obj.rank_key
        k = self.query.k
        for window_index in self._windows_of(obj.t):
            heap = self._predicted.setdefault(window_index, [])
            if len(heap) < k:
                heapq.heappush(heap, (key, obj))
                self._retain(obj)
            elif key > heap[0][0]:
                evicted_key, _ = heapq.heapreplace(heap, (key, obj))
                self._retain(obj)
                self._release(evicted_key)

    def _retain(self, obj: StreamObject) -> None:
        record = self._pool.get(obj.rank_key)
        if record is None:
            self._pool[obj.rank_key] = [obj, 1]
        else:
            record[1] += 1

    def _release(self, key: RankKey) -> None:
        record = self._pool.get(key)
        if record is None:
            return
        record[1] -= 1
        if record[1] <= 0:
            del self._pool[key]

    # ------------------------------------------------------------------
    def _report(self, event: SlideEvent) -> TopKResult:
        heap = self._predicted.pop(event.index, [])
        objects = [obj for _, obj in heap]
        for key, _ in heap:
            self._release(key)
        return TopKResult.from_objects(event.index, event.window_end, objects)

class MinTopKSharedPlan(CoreSharedPlan):
    """One MinTopK core (at ``k_max``) serving every member query."""

    kind = "MinTopK"

    def __init__(self, subscriptions: Sequence[object]) -> None:
        shape = subscriptions[0].query
        k_max = max(sub.query.k for sub in subscriptions)
        core = MinTopK(TopKQuery(n=shape.n, k=k_max, s=shape.s))
        super().__init__(subscriptions, core)
