"""Brute-force continuous top-k: re-scan the window at every slide.

This is both the correctness oracle of the test-suite and the naive
baseline: it stores the whole window and recomputes the top-k from scratch
whenever the window slides, paying ``O(n log k)`` per slide.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from ..core.interface import OBJECT_FOOTPRINT_BYTES, ContinuousTopKAlgorithm
from ..core.object import StreamObject, top_k
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.window import SlideEvent


class BruteForceTopK(ContinuousTopKAlgorithm):
    """Window re-scan at every slide (exact by construction)."""

    name = "brute-force"

    def __init__(self, query: TopKQuery) -> None:
        super().__init__(query)
        self._window: Deque[StreamObject] = deque()

    def process_slide(self, event: SlideEvent) -> TopKResult:
        for _ in event.expirations:
            self._window.popleft()
        self._window.extend(event.arrivals)
        best = top_k(self._window, self.query.k)
        return TopKResult.from_objects(event.index, event.window_end, best)

    def candidate_count(self) -> int:
        # The brute-force algorithm has no candidate set; its "candidates"
        # are the entire window.
        return len(self._window)

    def memory_bytes(self) -> int:
        return len(self._window) * OBJECT_FOOTPRINT_BYTES
