"""The one-pass k-skyband baseline (reference [19] of the paper).

The algorithm keeps every k-skyband object of the window as a candidate.
When a new object arrives, the dominance counters of all lower-ranked
candidates are incremented (the new object arrived later, hence dominates
them); candidates whose counter reaches ``k`` are discarded for good.  This
avoids window re-scans entirely but pays ``O(n_d)`` per arrival, where
``n_d`` is the number of candidates the new object dominates — the cost the
paper identifies as the weakness of one-pass approaches, most visible on
streams whose scores are anti-correlated with arrival order (TIMER).

Objects are processed one at a time: unlike MinTopK, the plain k-skyband
baseline does not exploit the slide granularity ``s`` (Appendix E of the
paper makes the same distinction).
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

from ..core.interface import OBJECT_FOOTPRINT_BYTES, ContinuousTopKAlgorithm
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.shared import CoreSharedPlan, SharedCoreMember
from ..core.window import SlideEvent
from ..structures.avl import AVLTree

RankKey = Tuple[float, int]


class _SkybandEntry:
    __slots__ = ("obj", "dominators")

    def __init__(self, obj: StreamObject) -> None:
        self.obj = obj
        self.dominators = 0


class KSkybandTopK(SharedCoreMember, ContinuousTopKAlgorithm):
    """Maintain all k-skyband objects of the window."""

    name = "k-skyband"

    def __init__(self, query: TopKQuery) -> None:
        super().__init__(query)
        self._candidates = AVLTree()

    # ------------------------------------------------------------------
    # Shared-slide lifecycle: the k-skyband of the window at k_max is a
    # superset of the skyband at any smaller k, and its top-k prefix *is*
    # the window's exact top-k.  One shared skyband core therefore serves
    # every co-windowed k-skyband query; members just slice the answer
    # (the mechanics live in SharedCoreMember / CoreSharedPlan).
    # ------------------------------------------------------------------
    def shared_plan_key(self) -> Hashable:
        return ("k-skyband",)

    def build_shared_plan(self, subscriptions: Sequence[object]) -> "KSkybandSharedPlan":
        return KSkybandSharedPlan(subscriptions)

    def _sharing_started(self) -> bool:
        return len(self._candidates) > 0

    def _local_candidate_count(self) -> int:
        return len(self._candidates)

    def _local_memory_bytes(self) -> int:
        return len(self._candidates) * OBJECT_FOOTPRINT_BYTES

    # ------------------------------------------------------------------
    def process_slide(self, event: SlideEvent) -> TopKResult:
        for obj in event.expirations:
            self._candidates.remove(obj.rank_key)
        for obj in event.arrivals:
            self._insert(obj)
        best = [entry.obj for _, entry in self._candidates.items_descending()][: self.query.k]
        return TopKResult.from_objects(event.index, event.window_end, best)

    def _insert(self, obj: StreamObject) -> None:
        # Every existing candidate ranked below the new object is dominated
        # by it; those reaching k dominators leave the skyband forever.
        doomed: List[RankKey] = []
        for key, entry in self._candidates.items():
            if key >= obj.rank_key:
                break
            entry.dominators += 1
            if entry.dominators >= self.query.k:
                doomed.append(key)
        for key in doomed:
            self._candidates.remove(key)
        self._candidates.insert(obj.rank_key, _SkybandEntry(obj))

class KSkybandSharedPlan(CoreSharedPlan):
    """One k-skyband core (at ``k_max``) serving every member query."""

    kind = "k-skyband"

    def __init__(self, subscriptions: Sequence[object]) -> None:
        shape = subscriptions[0].query
        k_max = max(sub.query.k for sub in subscriptions)
        core = KSkybandTopK(
            TopKQuery(n=shape.n, k=k_max, s=shape.s, time_based=shape.time_based)
        )
        super().__init__(subscriptions, core)
