"""Competitor algorithms the paper evaluates SAP against."""

from .brute_force import BruteForceTopK
from .kskyband import KSkybandTopK
from .mintopk import MinTopK
from .sma import SMATopK

__all__ = ["BruteForceTopK", "KSkybandTopK", "MinTopK", "SMATopK"]
