"""SMA — the multi-pass, grid-indexed baseline (reference [17] of the paper).

SMA maintains a candidate list holding the top-``k_max`` objects of the
window (``k_max = 2k`` by default) and keeps it up to date as the window
slides.  Dominance counters remove candidates that can never become results
(non-k-skyband objects).  When expirations shrink the candidate list below
``k``, the window is re-scanned to rebuild the list; the grid index limits
the re-scan to the highest-score cells.  Re-scans are the algorithm's
weakness — on streams whose scores trend downwards they happen every few
slides, which is the behaviour Figure 1(a) of the SAP paper illustrates.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.interface import (
    OBJECT_FOOTPRINT_BYTES,
    POINTER_FOOTPRINT_BYTES,
    ContinuousTopKAlgorithm,
)
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.window import SlideEvent
from ..structures.avl import AVLTree
from .grid import ScoreGrid

RankKey = Tuple[float, int]


class _CandidateRecord:
    __slots__ = ("obj", "dominators")

    def __init__(self, obj: StreamObject) -> None:
        self.obj = obj
        self.dominators = 0


class SMATopK(ContinuousTopKAlgorithm):
    """Grid-assisted top-``k_max`` candidate maintenance with re-scans."""

    name = "SMA"

    def __init__(self, query: TopKQuery, kmax_factor: int = 2, grid_cells: int = 64) -> None:
        super().__init__(query)
        if kmax_factor < 1:
            raise ValueError("kmax_factor must be at least 1")
        self._kmax = kmax_factor * query.k
        self._grid_cells = grid_cells
        self._grid = ScoreGrid()
        self._candidates = AVLTree()
        self._rescans = 0
        self._calibrated = False

    # ------------------------------------------------------------------
    def respawn(self) -> "SMATopK":
        """A fresh instance preserving the construction-time configuration
        (``kmax_factor``, ``grid_cells``) — the default query-only respawn
        would silently reset them, breaking serialized-state round-trips."""
        return SMATopK(
            self.query,
            kmax_factor=self._kmax // self.query.k,
            grid_cells=self._grid_cells,
        )

    # ------------------------------------------------------------------
    def process_slide(self, event: SlideEvent) -> TopKResult:
        for obj in event.expirations:
            self._grid.remove(obj)
            self._candidates.remove(obj.rank_key)

        # Multi-pass behaviour: expirations that empty the candidate list
        # below k trigger an immediate window re-scan, before the new
        # arrivals are considered — otherwise the candidate list could be
        # refilled with recent low-score objects and lose exactness.
        if len(self._grid) and len(self._candidates) < self.query.k:
            self._rescan()

        if not self._calibrated and event.arrivals:
            self._grid.calibrate([obj.score for obj in event.arrivals], self._grid_cells)
            self._calibrated = True
        for obj in event.arrivals:
            self._grid.insert(obj)
            self._consider(obj)

        if len(self._candidates) < self.query.k:
            self._rescan()

        best = [record.obj for _, record in self._candidates.items_descending()][: self.query.k]
        return TopKResult.from_objects(event.index, event.window_end, best)

    # ------------------------------------------------------------------
    def _consider(self, obj: StreamObject) -> None:
        """Admit a new arrival to the candidate list when it beats its
        minimum; update dominance counters of weaker candidates."""
        if len(self._candidates):
            min_key, _ = self._candidates.min_item()
            admit = obj.rank_key > min_key
        else:
            admit = True
        doomed: List[RankKey] = []
        for key, record in self._candidates.items():
            if key >= obj.rank_key:
                break
            record.dominators += 1
            if record.dominators >= self.query.k:
                doomed.append(key)
        for key in doomed:
            self._candidates.remove(key)
        if not admit:
            return
        self._candidates.insert(obj.rank_key, _CandidateRecord(obj))
        while len(self._candidates) > self._kmax:
            min_key, _ = self._candidates.min_item()
            self._candidates.remove(min_key)

    def _rescan(self) -> None:
        """Rebuild the candidate list with the window's top-``k_max``."""
        self._rescans += 1
        self._candidates.clear()
        for obj in self._grid.collect_top(self._kmax)[: self._kmax]:
            self._candidates.insert(obj.rank_key, _CandidateRecord(obj))

    # ------------------------------------------------------------------
    @property
    def rescan_count(self) -> int:
        """Number of window re-scans performed so far."""
        return self._rescans

    def candidate_count(self) -> int:
        return len(self._candidates)

    def memory_bytes(self) -> int:
        # SMA's grid indexes the whole window; the paper notes this as the
        # reason its memory/candidate numbers are not directly comparable
        # (Appendix E skips SMA for the candidate metric).
        return (
            len(self._candidates) * OBJECT_FOOTPRINT_BYTES
            + len(self._grid) * POINTER_FOOTPRINT_BYTES
            + self._grid.cell_count * POINTER_FOOTPRINT_BYTES
        )
