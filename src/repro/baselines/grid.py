"""Score-domain grid index used by the SMA baseline.

SMA (reference [17] of the paper) indexes the window objects in a grid so
that a window re-scan only needs to visit the highest-score cells until it
has gathered enough objects to rebuild its candidate set.  The original
algorithm grids the attribute space and uses the preference-function
coefficients to order cells; because this library computes scores up
front, a one-dimensional grid over the score domain is the equivalent
structure (documented as a substitution in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..core.object import StreamObject


class ScoreGrid:
    """Sparse one-dimensional grid over the score domain.

    Cells are dictionaries keyed by arrival order, so insertion and removal
    are O(1); a re-scan walks cells from the highest score downwards.
    """

    def __init__(self, cell_width: Optional[float] = None) -> None:
        self._cell_width = cell_width
        self._cells: Dict[int, Dict[int, StreamObject]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def _cell_index(self, score: float) -> int:
        if not self._cell_width:
            return 0
        return int(score // self._cell_width)

    def calibrate(self, scores: List[float], cells: int = 64) -> None:
        """Pick a cell width from an initial sample of scores."""
        if not scores or self._cell_width:
            return
        low, high = min(scores), max(scores)
        spread = high - low
        if spread <= 0:
            spread = abs(high) if high else 1.0
        self._cell_width = spread / float(cells)

    # ------------------------------------------------------------------
    def insert(self, obj: StreamObject) -> None:
        cell = self._cells.setdefault(self._cell_index(obj.score), {})
        cell[obj.t] = obj
        self._count += 1

    def remove(self, obj: StreamObject) -> bool:
        index = self._cell_index(obj.score)
        cell = self._cells.get(index)
        if cell is None or obj.t not in cell:
            return False
        del cell[obj.t]
        if not cell:
            del self._cells[index]
        self._count -= 1
        return True

    # ------------------------------------------------------------------
    def scan_from_top(self) -> Iterator[List[StreamObject]]:
        """Yield the contents of each cell, highest-score cells first."""
        for index in sorted(self._cells, reverse=True):
            yield list(self._cells[index].values())

    def collect_top(self, count: int) -> List[StreamObject]:
        """At least ``count`` highest-scored objects (fewer if the grid is
        smaller), gathered by visiting cells from the top."""
        gathered: List[StreamObject] = []
        for cell_objects in self.scan_from_top():
            gathered.extend(cell_objects)
            if len(gathered) >= count:
                break
        gathered.sort(key=lambda o: o.rank_key, reverse=True)
        return gathered
