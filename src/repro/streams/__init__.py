"""Stream sources: synthetic equivalents of the paper's datasets.

The paper evaluates on three real datasets (STOCK, TRIP, PLANET) and two
synthetic ones (TIMER, TIMEU).  The real datasets are not redistributable,
so this package provides synthetic generators that reproduce the relevant
property for every algorithm under study: the joint distribution of
*scores* and *arrival order*.  See DESIGN.md for the substitution notes.
"""

from .source import ListSource, StreamSource, materialise
from .io import CSVStream
from .preference import (
    PreferenceError,
    linear_preference,
    stock_preference,
    trip_preference,
    planet_preference,
)
from .synthetic import (
    DriftingStream,
    RandomWalkStream,
    TimeCorrelatedStream,
    UncorrelatedStream,
)
from .stock import StockStream, StockTransaction
from .trip import TripStream, TaxiTrip
from .planet import PlanetStream, Observation
from .registry import DATASETS, make_dataset, dataset_names

__all__ = [
    "StreamSource",
    "ListSource",
    "CSVStream",
    "materialise",
    "PreferenceError",
    "linear_preference",
    "stock_preference",
    "trip_preference",
    "planet_preference",
    "TimeCorrelatedStream",
    "UncorrelatedStream",
    "RandomWalkStream",
    "DriftingStream",
    "StockStream",
    "StockTransaction",
    "TripStream",
    "TaxiTrip",
    "PlanetStream",
    "Observation",
    "DATASETS",
    "make_dataset",
    "dataset_names",
]
