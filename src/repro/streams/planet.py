"""Synthetic PLANET stream.

The paper's PLANET dataset is the MPCAT-OBS minor-planet observation
catalogue; every record carries an observation coordinate and the preference
function is the distance between that coordinate and a fixed query point.
The synthetic generator draws observation coordinates from a mixture of
Gaussian clusters (observation campaigns focus on particular sky regions)
drifting slowly over arrival order, which reproduces the weak time
correlation of observation distances in the real catalogue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..core.object import StreamObject
from .preference import planet_preference
from .source import StreamSource


@dataclass(frozen=True)
class Observation:
    """A single synthetic sky observation."""

    x: float
    y: float
    epoch: int


class PlanetStream(StreamSource):
    """Generator of synthetic minor-planet observations."""

    name = "PLANET"

    def __init__(
        self,
        clusters: int = 5,
        drift: float = 0.0005,
        spread: float = 3.0,
        query_point: Tuple[float, float] = (0.0, 0.0),
        seed: int = 29,
    ) -> None:
        if clusters <= 0:
            raise ValueError("clusters must be positive")
        self.clusters = clusters
        self.drift = drift
        self.spread = spread
        self.query_point = query_point
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        centers = [
            [rng.uniform(-30.0, 30.0), rng.uniform(-30.0, 30.0)]
            for _ in range(self.clusters)
        ]
        velocities = [
            [rng.uniform(-self.drift, self.drift), rng.uniform(-self.drift, self.drift)]
            for _ in range(self.clusters)
        ]
        for t in range(count):
            cluster = rng.randrange(self.clusters)
            centers[cluster][0] += velocities[cluster][0]
            centers[cluster][1] += velocities[cluster][1]
            record = Observation(
                x=rng.gauss(centers[cluster][0], self.spread),
                y=rng.gauss(centers[cluster][1], self.spread),
                epoch=t,
            )
            score = planet_preference(record, self.query_point)
            yield StreamObject(score=score, t=t, payload=record)
