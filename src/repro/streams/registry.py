"""Dataset registry used by benchmarks, examples, and integration tests.

The registry maps the paper's dataset names to generator factories so the
experiment harness can iterate over "all five datasets" exactly the way the
evaluation section does.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .planet import PlanetStream
from .source import StreamSource
from .stock import StockStream
from .synthetic import DriftingStream, TimeCorrelatedStream, UncorrelatedStream
from .trip import TripStream


def _timer_factory(seed: int = 7) -> StreamSource:
    # The paper's TIMER period is 1e6 over multi-million object streams; the
    # registry scales the period so benchmark-sized streams still contain
    # several monotone up/down stretches per window.
    return TimeCorrelatedStream(period=4_000, seed=seed)


DATASETS: Dict[str, Callable[[], StreamSource]] = {
    "STOCK": lambda: StockStream(seed=17),
    "TRIP": lambda: TripStream(seed=23),
    "PLANET": lambda: PlanetStream(seed=29),
    "TIMEU": lambda: UncorrelatedStream(seed=11),
    "TIMER": _timer_factory,
    # Beyond the paper: a regime-switching stream for the adaptive
    # control plane (drift detection, partitioner swaps, load shedding).
    "DRIFT": lambda: DriftingStream(seed=19),
}


def dataset_names() -> List[str]:
    """Names of the datasets: the paper's five, then the extensions."""
    return ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER", "DRIFT"]


def make_dataset(name: str) -> StreamSource:
    """Instantiate a dataset generator by (case-insensitive) name."""
    key = name.upper()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key]()
