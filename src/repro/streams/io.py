"""Loading streams from user-supplied files.

The synthetic generators cover the paper's experiments; real deployments
load their own data.  This module turns delimited text files (CSV/TSV) into
streams: each row becomes a :class:`StreamObject` whose score is either read
from a column or computed by a user-supplied preference function over the
row dictionary.  Rows are assigned arrival orders in file order; an optional
timestamp column enables time-based windows.
"""

from __future__ import annotations

import csv
from typing import Callable, Dict, Iterator, List, Optional

from ..core.object import StreamObject
from .preference import PreferenceError
from .source import StreamSource, _dropped_counter

RowPreference = Callable[[Dict[str, str]], float]


class CSVStream(StreamSource):
    """Stream objects read from a delimited text file with a header row.

    Parameters
    ----------
    path:
        File to read.
    score_column:
        Name of the column holding the score.  Mutually exclusive with
        ``preference``.
    preference:
        Function computing the score from the row dictionary (all values are
        strings, exactly as the csv module provides them).  Rows the
        function cannot score (it raises
        :class:`~repro.streams.preference.PreferenceError`) are dropped and
        counted in :attr:`dropped` — real files contain the occasional
        zero-duration trip, and one bad row must not kill the stream.
        Arrival orders are assigned to admitted rows only.
    timestamp_column:
        Optional column holding an integer timestamp for time-based windows.
    delimiter:
        Field delimiter, ``,`` by default.
    """

    name = "CSV"

    def __init__(
        self,
        path: str,
        score_column: Optional[str] = None,
        preference: Optional[RowPreference] = None,
        timestamp_column: Optional[str] = None,
        delimiter: str = ",",
    ) -> None:
        if (score_column is None) == (preference is None):
            raise ValueError("provide exactly one of score_column or preference")
        self.path = path
        self.score_column = score_column
        self.preference = preference
        self.timestamp_column = timestamp_column
        self.delimiter = delimiter
        #: Rows dropped because ``preference`` raised PreferenceError.
        self.dropped = 0

    def _score(self, row: Dict[str, str]) -> float:
        if self.preference is not None:
            return float(self.preference(row))
        assert self.score_column is not None
        try:
            return float(row[self.score_column])
        except KeyError as error:
            raise KeyError(
                f"score column {self.score_column!r} missing from row {sorted(row)}"
            ) from error

    def objects(self, count: Optional[int] = None) -> Iterator[StreamObject]:
        with open(self.path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=self.delimiter)
            t = 0
            for row in reader:
                if count is not None and t >= count:
                    break
                try:
                    score = self._score(row)
                except PreferenceError:
                    self.dropped += 1
                    _dropped_counter(self.name).inc()
                    continue
                timestamp = None
                if self.timestamp_column is not None:
                    timestamp = int(float(row[self.timestamp_column]))
                yield StreamObject(score=score, t=t, payload=row, timestamp=timestamp)
                t += 1

    def take(self, count: Optional[int] = None) -> List[StreamObject]:
        return list(self.objects(count))
