"""Synthetic streams: TIMER, TIMEU and a generic random walk.

The paper's two synthetic datasets are

* **TIMER** ("time-related"): scores are a deterministic function of the
  arrival order, ``F(o) = sin(π · o.t / period)``, so the stream alternates
  between long stretches of monotonically increasing and monotonically
  decreasing scores — the adversarial case for k-skyband style candidate
  maintenance.
* **TIMEU** ("time-unrelated"): scores are independent of arrival order.

The random-walk stream is an extra generator useful for examples and for
stress-testing the dynamic partitioner on locally-trending data.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from ..core.object import StreamObject
from .source import StreamSource


class TimeCorrelatedStream(StreamSource):
    """The paper's TIMER dataset: ``F(o) = sin(π · t / period)``.

    Parameters
    ----------
    period:
        Half-period of the sine wave in number of objects.  The paper uses
        ``10^6``; benchmarks scale it down proportionally to the stream
        length so that every run sees several full oscillations.
    noise:
        Optional additive uniform noise amplitude; a tiny default keeps
        scores unique without changing the shape of the stream.
    seed:
        Seed of the noise generator.
    """

    name = "TIMER"

    def __init__(self, period: int = 1_000_000, noise: float = 1e-9, seed: int = 7) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.noise = noise
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        for t in range(count):
            score = math.sin(math.pi * t / self.period)
            if self.noise:
                score += rng.uniform(-self.noise, self.noise)
            yield StreamObject(score=score, t=t)


class UncorrelatedStream(StreamSource):
    """The paper's TIMEU dataset: scores independent of arrival order."""

    name = "TIMEU"

    def __init__(self, low: float = 0.0, high: float = 1.0, seed: int = 11) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        self.low = low
        self.high = high
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        for t in range(count):
            yield StreamObject(score=rng.uniform(self.low, self.high), t=t)


class DriftingStream(StreamSource):
    """Regime-switching stream for exercising the adaptive control plane.

    The stream alternates between two regimes every ``phase`` objects:

    * **calm** — scores uncorrelated with arrival order, uniform around
      ``low_mean`` (the TIMEU shape);
    * **hot** — scores time-correlated, ramping linearly across the phase
      around ``high_mean`` (the TIMER shape, shifted upward).

    Each switch is a genuine distribution change: the per-slide best scores
    jump between the two levels, which the control plane's drift analyzer
    detects with the same rank-sum test the dynamic partitioner uses, and
    the correlated phases reward dynamic over equal partition sizing.
    """

    name = "DRIFT"

    def __init__(
        self,
        phase: int = 2_000,
        low_mean: float = 0.3,
        high_mean: float = 0.7,
        spread: float = 0.25,
        noise: float = 0.02,
        seed: int = 19,
    ) -> None:
        if phase <= 0:
            raise ValueError("phase must be positive")
        if spread <= 0:
            raise ValueError("spread must be positive")
        if high_mean <= low_mean:
            raise ValueError("high_mean must exceed low_mean")
        self.phase = phase
        self.low_mean = low_mean
        self.high_mean = high_mean
        self.spread = spread
        self.noise = noise
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        for t in range(count):
            if (t // self.phase) % 2 == 0:
                score = self.low_mean + rng.uniform(-self.spread, self.spread)
            else:
                progress = (t % self.phase) / self.phase
                ramp = (2.0 * progress - 1.0) * self.spread
                score = self.high_mean + ramp + rng.uniform(-self.noise, self.noise)
            yield StreamObject(score=score, t=t)


class RandomWalkStream(StreamSource):
    """Scores following a bounded random walk (locally trending data)."""

    name = "RANDOM-WALK"

    def __init__(
        self,
        start: float = 100.0,
        step: float = 1.0,
        low: float = 0.0,
        high: float = 200.0,
        seed: int = 13,
    ) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        self.start = start
        self.step = step
        self.low = low
        self.high = high
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        value = self.start
        for t in range(count):
            value += rng.uniform(-self.step, self.step)
            value = min(self.high, max(self.low, value))
            yield StreamObject(score=value, t=t)
