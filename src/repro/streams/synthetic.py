"""Synthetic streams: TIMER, TIMEU and a generic random walk.

The paper's two synthetic datasets are

* **TIMER** ("time-related"): scores are a deterministic function of the
  arrival order, ``F(o) = sin(π · o.t / period)``, so the stream alternates
  between long stretches of monotonically increasing and monotonically
  decreasing scores — the adversarial case for k-skyband style candidate
  maintenance.
* **TIMEU** ("time-unrelated"): scores are independent of arrival order.

The random-walk stream is an extra generator useful for examples and for
stress-testing the dynamic partitioner on locally-trending data.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from ..core.object import StreamObject
from .source import StreamSource


class TimeCorrelatedStream(StreamSource):
    """The paper's TIMER dataset: ``F(o) = sin(π · t / period)``.

    Parameters
    ----------
    period:
        Half-period of the sine wave in number of objects.  The paper uses
        ``10^6``; benchmarks scale it down proportionally to the stream
        length so that every run sees several full oscillations.
    noise:
        Optional additive uniform noise amplitude; a tiny default keeps
        scores unique without changing the shape of the stream.
    seed:
        Seed of the noise generator.
    """

    name = "TIMER"

    def __init__(self, period: int = 1_000_000, noise: float = 1e-9, seed: int = 7) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.noise = noise
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        for t in range(count):
            score = math.sin(math.pi * t / self.period)
            if self.noise:
                score += rng.uniform(-self.noise, self.noise)
            yield StreamObject(score=score, t=t)


class UncorrelatedStream(StreamSource):
    """The paper's TIMEU dataset: scores independent of arrival order."""

    name = "TIMEU"

    def __init__(self, low: float = 0.0, high: float = 1.0, seed: int = 11) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        self.low = low
        self.high = high
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        for t in range(count):
            yield StreamObject(score=rng.uniform(self.low, self.high), t=t)


class RandomWalkStream(StreamSource):
    """Scores following a bounded random walk (locally trending data)."""

    name = "RANDOM-WALK"

    def __init__(
        self,
        start: float = 100.0,
        step: float = 1.0,
        low: float = 0.0,
        high: float = 200.0,
        seed: int = 13,
    ) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        self.start = start
        self.step = step
        self.low = low
        self.high = high
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        value = self.start
        for t in range(count):
            value += rng.uniform(-self.step, self.step)
            value = min(self.high, max(self.low, value))
            yield StreamObject(score=value, t=t)
