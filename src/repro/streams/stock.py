"""Synthetic STOCK stream.

The paper's STOCK dataset contains two years of Shanghai/Shenzhen stock
transactions with attributes (stock id, transaction time, volume, price) and
uses ``F = price × volume`` as the preference function.  The proprietary
data cannot be redistributed, so this generator produces transactions with
the same structural properties that matter to the algorithms:

* a pool of stocks whose prices follow independent geometric random walks
  (so scores are weakly correlated with arrival order over short horizons);
* heavy-tailed (log-normal) trade volumes, producing the occasional
  outstanding transaction that dominates a window for a while.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..core.object import StreamObject
from .preference import stock_preference
from .source import StreamSource


@dataclass(frozen=True)
class StockTransaction:
    """A single synthetic stock transaction record."""

    stock_id: int
    time: int
    price: float
    volume: float


class StockStream(StreamSource):
    """Generator of synthetic stock transactions.

    Parameters
    ----------
    stocks:
        Number of distinct stocks (the paper's dataset covers 2,300).
    base_price / volatility:
        Initial price level and per-trade relative volatility of the
        geometric random walk followed by each stock.
    volume_sigma:
        Log-normal sigma of the traded volume.
    seed:
        RNG seed for reproducibility.
    """

    name = "STOCK"

    def __init__(
        self,
        stocks: int = 100,
        base_price: float = 20.0,
        volatility: float = 0.002,
        volume_sigma: float = 1.2,
        seed: int = 17,
    ) -> None:
        if stocks <= 0:
            raise ValueError("stocks must be positive")
        self.stocks = stocks
        self.base_price = base_price
        self.volatility = volatility
        self.volume_sigma = volume_sigma
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        prices = [
            self.base_price * math.exp(rng.gauss(0.0, 0.5)) for _ in range(self.stocks)
        ]
        for t in range(count):
            stock = rng.randrange(self.stocks)
            prices[stock] *= math.exp(rng.gauss(0.0, self.volatility))
            volume = math.exp(rng.gauss(5.0, self.volume_sigma))
            record = StockTransaction(
                stock_id=stock, time=t, price=prices[stock], volume=volume
            )
            yield StreamObject(score=stock_preference(record), t=t, payload=record)
