"""Preference functions for the paper's application scenarios.

Each function maps a raw application record to the numeric score used by the
continuous top-k query, mirroring Section 6.1 of the paper:

* STOCK — ``F = price × volume`` (transaction significance);
* TRIP — ``F = distance / (drop-off − pick-up)`` (average trip speed);
* PLANET — ``F = dist(record, query point)`` (observation distance).

Real feeds contain records no preference function can score — the canonical
example is a taxi trip whose drop-off equals its pick-up (metered while
parked, or a clock-granularity artefact), which makes the TRIP speed
``dis / 0`` undefined.  Such records raise :class:`PreferenceError`, and the
stream sources (:class:`~repro.streams.source.ListSource`,
:class:`~repro.streams.io.CSVStream`) *drop* them with a counter instead of
tearing down the stream: one malformed record must never kill a continuous
query that has been running for days.  Dropped records are not assigned
arrival orders, so the admitted stream keeps the contiguous ``t`` sequence
the count-based window algorithms rely on.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple


class PreferenceError(ValueError):
    """A record the preference function cannot score.

    Raised by the built-in preference functions on malformed records
    (zero-duration trips, non-numeric fields).  Stream sources treat it as
    "drop this record and count it" rather than a stream-fatal error; any
    other exception still propagates, because it signals a bug rather than
    a bad record.
    """


def stock_preference(transaction) -> float:
    """Significance of a stock transaction: traded value = price × volume."""
    return float(transaction.price) * float(transaction.volume)


def trip_preference(trip) -> float:
    """Average speed of a taxi trip: distance over duration.

    Zero- or negative-duration trips (drop-off at or before pick-up) have
    no defined speed; they raise :class:`PreferenceError` so sources drop
    them mid-stream instead of crashing the feed.
    """
    duration = float(trip.dropoff_time) - float(trip.pickup_time)
    if duration <= 0:
        raise PreferenceError(
            f"trip duration must be positive, got {duration!r} "
            "(drop-off at or before pick-up)"
        )
    return float(trip.distance) / duration


def planet_preference(observation, query_point: Tuple[float, float] = (0.0, 0.0)) -> float:
    """Distance between an observation coordinate and the query point."""
    dx = float(observation.x) - query_point[0]
    dy = float(observation.y) - query_point[1]
    return math.hypot(dx, dy)


def linear_preference(weights: Sequence[float]) -> Callable[[object], float]:
    """A linear scoring function ``w · attributes(record)``.

    The per-record twin of the cluster plane's canonical batch scorer
    (:func:`repro.core.clustering.linear_scores`): records whose attributes
    are missing or malformed raise :class:`PreferenceError` (sources drop
    them), and scorable records are scored through the *same* code path the
    shared cluster plans use, so a stream pre-scored with
    ``linear_preference(w)`` is byte-identical to a preference subscription
    on ``w`` whose exactness guard holds.
    """
    from ..core.clustering import (
        UNATTRIBUTED_SCORE,
        attributes_of_payload,
        linear_score,
        validate_vector,
    )

    vector = validate_vector(weights)
    dim = len(vector)

    def score(record: object) -> float:
        attributes = attributes_of_payload(record, dim)
        if attributes is None:
            raise PreferenceError(
                f"record has no usable {dim}-dimensional attributes: {record!r}"
            )
        value = linear_score(vector, attributes)
        if value == UNATTRIBUTED_SCORE:
            raise PreferenceError(f"record is unscorable: {record!r}")
        return value

    return score
