"""Preference functions for the paper's application scenarios.

Each function maps a raw application record to the numeric score used by the
continuous top-k query, mirroring Section 6.1 of the paper:

* STOCK — ``F = price × volume`` (transaction significance);
* TRIP — ``F = distance / (drop-off − pick-up)`` (average trip speed);
* PLANET — ``F = dist(record, query point)`` (observation distance).
"""

from __future__ import annotations

import math
from typing import Tuple


def stock_preference(transaction) -> float:
    """Significance of a stock transaction: traded value = price × volume."""
    return float(transaction.price) * float(transaction.volume)


def trip_preference(trip) -> float:
    """Average speed of a taxi trip: distance over duration."""
    duration = float(trip.dropoff_time) - float(trip.pickup_time)
    if duration <= 0:
        raise ValueError("trip duration must be positive")
    return float(trip.distance) / duration


def planet_preference(observation, query_point: Tuple[float, float] = (0.0, 0.0)) -> float:
    """Distance between an observation coordinate and the query point."""
    dx = float(observation.x) - query_point[0]
    dy = float(observation.y) - query_point[1]
    return math.hypot(dx, dy)
