"""Synthetic TRIP stream.

The paper's TRIP dataset contains six years of NYC taxi trips with
attributes (taxi id, pick-up time, drop-off time, travel distance) ordered
by pick-up time, and uses average speed ``dis / (td − tp)`` as the
preference function.  The synthetic generator reproduces the relevant
behaviour: most trips have moderate speeds drawn from a gamma-like
distribution, with a diurnal congestion cycle that slowly modulates speeds
over arrival order (weak time correlation) and the occasional highway trip
producing a burst of high scores.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..core.object import StreamObject
from .preference import trip_preference
from .source import StreamSource


@dataclass(frozen=True)
class TaxiTrip:
    """A single synthetic taxi trip record."""

    taxi_id: int
    pickup_time: float
    dropoff_time: float
    distance: float


class TripStream(StreamSource):
    """Generator of synthetic taxi trips ordered by pick-up time."""

    name = "TRIP"

    def __init__(
        self,
        taxis: int = 500,
        cycle: int = 5_000,
        highway_probability: float = 0.02,
        seed: int = 23,
    ) -> None:
        if taxis <= 0:
            raise ValueError("taxis must be positive")
        if cycle <= 0:
            raise ValueError("cycle must be positive")
        self.taxis = taxis
        self.cycle = cycle
        self.highway_probability = highway_probability
        self.seed = seed

    def objects(self, count: int) -> Iterator[StreamObject]:
        rng = random.Random(self.seed)
        for t in range(count):
            # Diurnal congestion factor in [0.6, 1.4].
            congestion = 1.0 + 0.4 * math.sin(2.0 * math.pi * t / self.cycle)
            distance = rng.gammavariate(2.0, 1.5)  # miles
            if rng.random() < self.highway_probability:
                distance += rng.uniform(10.0, 30.0)
            base_speed = rng.gammavariate(4.0, 3.0) * congestion  # mph
            base_speed = max(base_speed, 0.5)
            duration = distance / base_speed  # hours
            record = TaxiTrip(
                taxi_id=rng.randrange(self.taxis),
                pickup_time=float(t),
                dropoff_time=float(t) + max(duration, 1e-6),
                distance=distance,
            )
            yield StreamObject(score=trip_preference(record), t=t, payload=record)
