"""Stream source abstractions.

A stream source produces :class:`~repro.core.object.StreamObject` instances
with strictly increasing arrival orders.  Sources are deliberately simple
(iterables with a length hint) so that any Python iterable of scores or
records can be turned into a stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

from ..core.object import StreamObject
from ..obs.registry import get_registry
from .preference import PreferenceError


def _dropped_counter(source: str):
    """The library-wide unscorable-record counter, labelled by source."""
    return get_registry().counter(
        "repro_preference_dropped_total",
        "records dropped because the preference function could not score them",
        labels={"source": source},
    )


class StreamSource(ABC):
    """Base class of every stream generator in the library."""

    #: Human readable name used by the benchmark harness.
    name: str = "stream"

    @abstractmethod
    def objects(self, count: int) -> Iterator[StreamObject]:
        """Yield ``count`` stream objects with arrival orders ``0..count-1``."""

    def take(self, count: int) -> List[StreamObject]:
        """Materialise ``count`` objects into a list."""
        return list(self.objects(count))

    def feed(self, engine, count: int, *, flush: bool = True) -> int:
        """Push ``count`` objects into a :class:`repro.engine.StreamEngine`.

        The adapter streams the objects one at a time (never materialising
        them) and, by default, flushes the engine afterwards so time-based
        subscriptions emit their end-of-stream report.  Returns the number
        of objects pushed.
        """
        pushed = engine.push_many(self.objects(count))
        if flush:
            engine.flush()
        return pushed


class ListSource(StreamSource):
    """Wrap an in-memory sequence of scores or records as a stream.

    Parameters
    ----------
    values:
        The raw values.  When ``preference`` is omitted the values must be
        numeric and are used as the scores directly.
    preference:
        Optional preference function applied to each value.  Values the
        function cannot score (it raises
        :class:`~repro.streams.preference.PreferenceError`) are dropped
        and counted in :attr:`dropped`; arrival orders are assigned to
        admitted values only, so the emitted ``t`` sequence stays
        contiguous.
    name:
        Optional display name.
    """

    def __init__(
        self,
        values: Sequence[Any],
        preference: Optional[Callable[[Any], float]] = None,
        name: str = "list",
    ) -> None:
        self._values = list(values)
        self._preference = preference
        self.name = name
        #: Records dropped because ``preference`` raised PreferenceError.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._values)

    def objects(self, count: Optional[int] = None) -> Iterator[StreamObject]:
        limit = len(self._values) if count is None else min(count, len(self._values))
        t = 0
        for value in self._values[:limit]:
            if self._preference is not None:
                try:
                    score = self._preference(value)
                except PreferenceError:
                    self.dropped += 1
                    _dropped_counter(self.name).inc()
                    continue
            else:
                score = float(value)
            yield StreamObject(score=score, t=t, payload=value)
            t += 1


def materialise(scores: Iterable[float], start_t: int = 0) -> List[StreamObject]:
    """Convert a plain iterable of scores into stream objects.

    Convenience helper used pervasively by the tests: arrival orders are
    assigned sequentially starting from ``start_t``.
    """
    return [
        StreamObject(score=float(score), t=start_t + offset)
        for offset, score in enumerate(scores)
    ]
