"""The single algorithm registry of the library.

Every continuous top-k algorithm — the SAP framework with its partitioner
variants and the competitors from the paper's evaluation — is registered
here exactly once, under the name used in the paper's tables.  The CLI
(:data:`repro.cli.CLI_ALGORITHMS`), the package-level
:func:`repro.algorithm_registry`, the benchmark harness, and the push-based
:class:`repro.engine.StreamEngine` all resolve algorithm names through this
module, so a new algorithm registered with :func:`register_algorithm` is
immediately addressable everywhere::

    from repro.registry import register_algorithm

    @register_algorithm("my-topk", description="a hand-rolled baseline")
    class MyTopK(ContinuousTopKAlgorithm):
        ...

    # or register a configuration of an existing algorithm:
    @register_algorithm("SAP-eager")
    def _sap_eager(query):
        return SAPTopK(query, meaningful_policy="eager")

A factory is any callable ``factory(query, **options) -> algorithm``; an
algorithm class works directly because its constructor has that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .core.interface import ContinuousTopKAlgorithm
from .core.query import TopKQuery

AlgorithmFactory = Callable[..., ContinuousTopKAlgorithm]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: the public name, the factory, and a description.

    ``example_options`` carries a minimal set of keyword options that make
    the factory constructible from a query alone — empty for the classic
    score-ordered algorithms, and e.g. ``{"vector": ...}`` for preference
    algorithms whose constructor has required options.  Generic tooling
    (smoke tests, doc generators) uses :meth:`create_example` instead of
    guessing at required arguments.
    """

    name: str
    factory: AlgorithmFactory = field(compare=False)
    description: str = ""
    example_options: Dict[str, object] = field(default_factory=dict, compare=False)

    def create(self, query: TopKQuery, **options: object) -> ContinuousTopKAlgorithm:
        """Instantiate the algorithm for ``query``."""
        return self.factory(query, **options)

    def create_example(self, query: TopKQuery) -> ContinuousTopKAlgorithm:
        """Instantiate with the entry's example options (generic tooling)."""
        return self.factory(query, **self.example_options)


_REGISTRY: Dict[str, AlgorithmInfo] = {}


def register_algorithm(
    name: str,
    *,
    description: str = "",
    replace: bool = False,
    example_options: Optional[Dict[str, object]] = None,
) -> Callable[[AlgorithmFactory], AlgorithmFactory]:
    """Class/function decorator adding a factory to the global registry.

    ``replace=True`` allows overwriting an existing entry (useful in tests
    and for applications that want to re-configure a built-in name).
    """

    def decorator(factory: AlgorithmFactory) -> AlgorithmFactory:
        register_factory(
            name,
            factory,
            description=description,
            replace=replace,
            example_options=example_options,
        )
        return factory

    return decorator


def register_factory(
    name: str,
    factory: AlgorithmFactory,
    *,
    description: str = "",
    replace: bool = False,
    example_options: Optional[Dict[str, object]] = None,
) -> AlgorithmInfo:
    """Non-decorator form of :func:`register_algorithm`."""
    if not name:
        raise ValueError("algorithm name must be a non-empty string")
    if not callable(factory):
        raise TypeError(f"factory for {name!r} must be callable, got {factory!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"algorithm {name!r} is already registered; pass replace=True to overwrite"
        )
    info = AlgorithmInfo(
        name=name,
        factory=factory,
        description=description,
        example_options=dict(example_options or {}),
    )
    _REGISTRY[name] = info
    return info


def unregister_algorithm(name: str) -> None:
    """Remove an entry (primarily for tests); unknown names are ignored."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up one entry, with a helpful error listing the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def create_algorithm(
    name: str, query: TopKQuery, **options: object
) -> ContinuousTopKAlgorithm:
    """Instantiate a registered algorithm by name."""
    return get_algorithm(name).create(query, **options)


def algorithm_names() -> List[str]:
    """Registered names in registration order (paper order for built-ins)."""
    return list(_REGISTRY)


def algorithm_factories(
    *names: str,
) -> Dict[str, Callable[[TopKQuery], ContinuousTopKAlgorithm]]:
    """Name → factory mapping for the given names (all when none given).

    This is the shape the CLI, the benchmark harness, and the legacy
    :func:`repro.algorithm_registry` consume.
    """
    selected = names or tuple(_REGISTRY)
    return {name: get_algorithm(name).factory for name in selected}


# ----------------------------------------------------------------------
# Built-in registrations (the algorithms of the paper's evaluation).
# ----------------------------------------------------------------------
def _register_builtins() -> None:
    from .baselines import BruteForceTopK, KSkybandTopK, MinTopK, SMATopK
    from .core.framework import SAPTopK
    from .partitioning import (
        DynamicPartitioner,
        EnhancedDynamicPartitioner,
        EqualPartitioner,
    )

    register_factory(
        "SAP",
        lambda query, **opts: SAPTopK(query, **opts),
        description="SAP framework with its default (enhanced dynamic) partitioner",
    )
    register_factory(
        "SAP-equal",
        lambda query, **opts: SAPTopK(query, partitioner=EqualPartitioner(), **opts),
        description="SAP with the equal partitioner (Section 4.1)",
    )
    register_factory(
        "SAP-dynamic",
        lambda query, **opts: SAPTopK(query, partitioner=DynamicPartitioner(), **opts),
        description="SAP with the dynamic partitioner (Section 4.2)",
    )
    register_factory(
        "SAP-enhanced",
        lambda query, **opts: SAPTopK(
            query, partitioner=EnhancedDynamicPartitioner(), **opts
        ),
        description="SAP with the enhanced dynamic partitioner (Section 4.3)",
    )
    register_factory(
        "MinTopK", MinTopK, description="MinTopK competitor (Yang et al.)"
    )
    register_factory(
        "k-skyband", KSkybandTopK, description="k-skyband competitor (Mouratidis et al.)"
    )
    register_factory("SMA", SMATopK, description="SMA competitor (Mouratidis et al.)")
    register_factory(
        "brute-force",
        BruteForceTopK,
        description="exact oracle recomputing the answer from the whole window",
    )
    register_factory(
        "clustered",
        _make_clustered,
        description=(
            "linear-preference query sharing one padded-k cluster plan "
            "(vector=..., inner=<algorithm name>)"
        ),
        example_options={"vector": (1.0, 1.0, 1.0)},
    )


def _make_clustered(query: TopKQuery, **options: object) -> ContinuousTopKAlgorithm:
    """Factory of the preference-clustering member algorithm.

    Imported lazily: :mod:`repro.core.clustering` resolves its inner
    algorithm through this registry, so a module-level import would cycle.
    """
    from .core.clustering import ClusteredTopK
    from .core.exceptions import InvalidQueryError

    if "vector" not in options:
        raise InvalidQueryError(
            "the 'clustered' algorithm scores by a linear preference: pass "
            "vector=<non-negative weights>, e.g. "
            "create_algorithm('clustered', query, vector=(1.0, 0.5, 0.2))"
        )
    return ClusteredTopK(query, **options)


_register_builtins()
