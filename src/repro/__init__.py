"""Reproduction of "SAP: Improving Continuous Top-K Queries over Streaming Data".

The public API mirrors the paper's structure:

* :class:`repro.StreamEngine` -- the push-based execution facade: subscribe
  continuous queries, push stream objects one at a time, consume answers
  via callbacks or result buffers (O(window) memory on unbounded streams);
* :class:`repro.QuerySpec` / :class:`repro.TopKQuery` -- the continuous
  query ``(n, k, s, F)``, as a fluent builder or an immutable tuple;
* :mod:`repro.registry` -- the single algorithm registry: SAP with its
  partitioner variants plus the competitors (MinTopK, k-skyband, SMA,
  brute-force), extensible with :func:`repro.register_algorithm`;
* :class:`repro.SAPTopK` -- the SAP framework (the paper's contribution),
  configurable with the equal, dynamic, or enhanced dynamic partitioner;
* :class:`repro.cluster.ShardedStreamEngine` -- the sharded execution
  plane: the same subscribe/push API across N worker processes, with
  placement policies, merged statistics, and live rebalancing;
* :mod:`repro.streams` -- synthetic equivalents of the paper's datasets;
* :mod:`repro.runner` -- legacy one-shot helpers (:func:`run_algorithm`,
  :func:`compare_algorithms`), kept as thin wrappers over the engine.

Quickstart (push-based, works on unbounded streams)::

    from repro import QuerySpec, StreamEngine
    from repro.streams import UncorrelatedStream

    engine = StreamEngine()
    watch = engine.subscribe(
        "watch", QuerySpec(n=1000, k=10, s=10), algorithm="SAP"
    )
    UncorrelatedStream(seed=1).feed(engine, 5000)
    print(watch.latest().scores)
    print(watch.stats())
    engine.close()

Legacy one-shot quickstart (equivalent results)::

    from repro import SAPTopK, TopKQuery, run_algorithm
    from repro.streams import UncorrelatedStream

    query = TopKQuery(n=1000, k=10, s=10)
    stream = UncorrelatedStream(seed=1).take(5000)
    report = run_algorithm(SAPTopK(query), stream)
    print(report.summary())
"""

from .core import (
    AlgorithmStateError,
    ContinuousTopKAlgorithm,
    InvalidPartitionError,
    InvalidQueryError,
    ReproError,
    SAPTopK,
    SlideEvent,
    StreamObject,
    TopKQuery,
    TopKResult,
    make_query,
    results_agree,
    top_k,
)
from .baselines import BruteForceTopK, KSkybandTopK, MinTopK, SMATopK
from .partitioning import (
    DynamicPartitioner,
    EnhancedDynamicPartitioner,
    EqualPartitioner,
    Partitioner,
)
from .registry import (
    AlgorithmInfo,
    algorithm_factories,
    algorithm_names,
    create_algorithm,
    register_algorithm,
)
from .control import AdaptiveController, Knowledge, Policy
from .engine import EngineCore, QueryGroup, QuerySpec, StreamEngine, Subscription
from .cluster import ShardedStreamEngine, ShardSubscription
from .runner import RunReport, compare_algorithms, run_algorithm

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ReproError",
    "InvalidQueryError",
    "InvalidPartitionError",
    "AlgorithmStateError",
    "StreamObject",
    "TopKQuery",
    "make_query",
    "TopKResult",
    "results_agree",
    "top_k",
    "SlideEvent",
    "ContinuousTopKAlgorithm",
    "SAPTopK",
    "BruteForceTopK",
    "KSkybandTopK",
    "MinTopK",
    "SMATopK",
    "Partitioner",
    "EqualPartitioner",
    "DynamicPartitioner",
    "EnhancedDynamicPartitioner",
    "EngineCore",
    "StreamEngine",
    "ShardedStreamEngine",
    "ShardSubscription",
    "QueryGroup",
    "QuerySpec",
    "Subscription",
    "AdaptiveController",
    "Knowledge",
    "Policy",
    "AlgorithmInfo",
    "register_algorithm",
    "create_algorithm",
    "algorithm_names",
    "algorithm_factories",
    "algorithm_registry",
    "RunReport",
    "run_algorithm",
    "compare_algorithms",
]


def algorithm_registry():
    """Factories of every algorithm keyed by the names used in the paper.

    Deprecated alias of :func:`repro.registry.algorithm_factories`; the
    single source of truth is :mod:`repro.registry`.
    """
    return algorithm_factories()
