"""Reproduction of "SAP: Improving Continuous Top-K Queries over Streaming Data".

The public API mirrors the paper's structure:

* :class:`repro.TopKQuery` -- the continuous query ``(n, k, s, F)``;
* :class:`repro.SAPTopK` -- the SAP framework (the paper's contribution),
  configurable with the equal, dynamic, or enhanced dynamic partitioner;
* :class:`repro.MinTopK`, :class:`repro.KSkybandTopK`, :class:`repro.SMATopK`,
  :class:`repro.BruteForceTopK` -- the competitors used in the evaluation;
* :mod:`repro.streams` -- synthetic equivalents of the paper's datasets;
* :mod:`repro.runner` -- engine, metrics, and agreement checking.

Quickstart::

    from repro import SAPTopK, TopKQuery, run_algorithm
    from repro.streams import UncorrelatedStream

    query = TopKQuery(n=1000, k=10, s=10)
    stream = UncorrelatedStream(seed=1).take(5000)
    report = run_algorithm(SAPTopK(query), stream)
    print(report.summary())
"""

from .core import (
    AlgorithmStateError,
    ContinuousTopKAlgorithm,
    InvalidPartitionError,
    InvalidQueryError,
    ReproError,
    SAPTopK,
    SlideEvent,
    StreamObject,
    TopKQuery,
    TopKResult,
    make_query,
    results_agree,
    top_k,
)
from .baselines import BruteForceTopK, KSkybandTopK, MinTopK, SMATopK
from .partitioning import (
    DynamicPartitioner,
    EnhancedDynamicPartitioner,
    EqualPartitioner,
    Partitioner,
)
from .runner import MultiQueryEngine, RunReport, compare_algorithms, run_algorithm

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "InvalidQueryError",
    "InvalidPartitionError",
    "AlgorithmStateError",
    "StreamObject",
    "TopKQuery",
    "make_query",
    "TopKResult",
    "results_agree",
    "top_k",
    "SlideEvent",
    "ContinuousTopKAlgorithm",
    "SAPTopK",
    "BruteForceTopK",
    "KSkybandTopK",
    "MinTopK",
    "SMATopK",
    "Partitioner",
    "EqualPartitioner",
    "DynamicPartitioner",
    "EnhancedDynamicPartitioner",
    "RunReport",
    "run_algorithm",
    "compare_algorithms",
    "MultiQueryEngine",
]


def algorithm_registry():
    """Factories of every algorithm keyed by the names used in the paper."""
    return {
        "SAP": lambda query: SAPTopK(query),
        "SAP-equal": lambda query: SAPTopK(query, partitioner=EqualPartitioner()),
        "SAP-dynamic": lambda query: SAPTopK(query, partitioner=DynamicPartitioner()),
        "MinTopK": MinTopK,
        "k-skyband": KSkybandTopK,
        "SMA": SMATopK,
        "brute-force": BruteForceTopK,
    }
