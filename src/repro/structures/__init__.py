"""Ordered data-structure substrates used by the SAP framework and baselines."""

from .avl import AVLTree

__all__ = ["AVLTree"]
