"""A from-scratch AVL tree used as the ordered-map substrate of the library.

The paper relies on balanced search trees in several places: each partition
maintains its top-k objects ``P_i^k`` in an AVL tree (Section 3.1), the
S-AVL structure keeps the top entries of its stacks in an AVL tree
(Section 5.1), and the candidate sets of SAP and of the baselines need
ordered access by score.  This module provides a single, order-statistic
augmented AVL tree that covers all of those uses.

Keys may be any mutually comparable values; the library conventionally uses
``(score, arrival_order)`` tuples so that the tree realises the global total
order defined in :mod:`repro.core.object`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "left", "right", "height", "size")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1
        self.size = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    node.size = 1 + _size(node.left) + _size(node.right)


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """Order-statistic AVL tree mapping unique keys to values.

    Supported operations (all ``O(log n)`` unless noted):

    * ``insert`` / ``remove`` / ``get`` / ``__contains__``
    * ``min_item`` / ``max_item`` / ``pop_min`` / ``pop_max``
    * ``count_greater(key)`` / ``count_less(key)`` — order statistics
    * ``kth_largest(k)``
    * ascending / descending iteration (``O(n)``)
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    # Size and membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return default

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` (replacing the stored value if it already exists)."""
        self._root = self._insert(self._root, key, value)

    def _insert(self, node: Optional[_Node], key: Any, value: Any) -> _Node:
        if node is None:
            return _Node(key, value)
        if key == node.key:
            node.value = value
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return _rebalance(node)

    def remove(self, key: Any) -> bool:
        """Remove ``key``; return True when it was present."""
        self._root, removed = self._remove(self._root, key)
        return removed

    def _remove(self, node: Optional[_Node], key: Any) -> Tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif key > node.key:
            node.right, removed = self._remove(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _ = self._remove(node.right, successor.key)
        return _rebalance(node), removed

    def clear(self) -> None:
        self._root = None

    # ------------------------------------------------------------------
    # Extremes
    # ------------------------------------------------------------------
    def min_item(self) -> Tuple[Any, Any]:
        node = self._require_root()
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def max_item(self) -> Tuple[Any, Any]:
        node = self._require_root()
        while node.right is not None:
            node = node.right
        return node.key, node.value

    def pop_min(self) -> Tuple[Any, Any]:
        key, value = self.min_item()
        self.remove(key)
        return key, value

    def pop_max(self) -> Tuple[Any, Any]:
        key, value = self.max_item()
        self.remove(key)
        return key, value

    def _require_root(self) -> _Node:
        if self._root is None:
            raise KeyError("tree is empty")
        return self._root

    # ------------------------------------------------------------------
    # Order statistics
    # ------------------------------------------------------------------
    def count_greater(self, key: Any) -> int:
        """Number of stored keys strictly greater than ``key``."""
        count = 0
        node = self._root
        while node is not None:
            if key < node.key:
                count += 1 + _size(node.right)
                node = node.left
            else:
                node = node.right
        return count

    def count_less(self, key: Any) -> int:
        """Number of stored keys strictly less than ``key``."""
        count = 0
        node = self._root
        while node is not None:
            if key > node.key:
                count += 1 + _size(node.left)
                node = node.right
            else:
                node = node.left
        return count

    def kth_largest(self, k: int) -> Tuple[Any, Any]:
        """Return the k-th largest (1-based) key/value pair."""
        if k <= 0 or k > len(self):
            raise KeyError(f"k={k} out of range for tree of size {len(self)}")
        node = self._root
        while node is not None:
            right = _size(node.right)
            if k == right + 1:
                return node.key, node.value
            if k <= right:
                node = node.right
            else:
                k -= right + 1
                node = node.left
        raise KeyError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    # An explicit stack instead of recursive generators: ``yield from``
    # chains cost O(depth) per yielded item and these walks sit on the
    # per-slide hot path of every algorithm (candidate scans, top-k reads).
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Ascending-key iteration."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def items_descending(self) -> Iterator[Tuple[Any, Any]]:
        """Descending-key iteration."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.right
            node = stack.pop()
            yield node.key, node.value
            node = node.left

    def keys(self) -> List[Any]:
        return [key for key, _ in self.items()]

    def values(self) -> List[Any]:
        return [value for _, value in self.items()]

    def largest(self, count: int) -> List[Tuple[Any, Any]]:
        """The ``count`` largest items, best (largest key) first."""
        result: List[Tuple[Any, Any]] = []
        for item in self.items_descending():
            if len(result) >= count:
                break
            result.append(item)
        return result

    # ------------------------------------------------------------------
    # Serialization (the cluster's state layer pickles trees across
    # process boundaries)
    # ------------------------------------------------------------------
    # The wire form is the sorted item list, not the node graph: it is
    # independent of the incidental tree topology (two trees holding the
    # same mapping serialize identically), far more compact than pickling
    # linked ``_Node`` objects, and rebuilding produces a perfectly
    # balanced tree.
    def __getstate__(self) -> List[Tuple[Any, Any]]:
        return list(self.items())

    def __setstate__(self, items: List[Tuple[Any, Any]]) -> None:
        self._root = self._build_balanced(items, 0, len(items))

    @staticmethod
    def _build_balanced(
        items: List[Tuple[Any, Any]], low: int, high: int
    ) -> Optional[_Node]:
        """Perfectly balanced subtree over ``items[low:high]`` (sorted)."""
        if low >= high:
            return None
        mid = (low + high) // 2
        node = _Node(*items[mid])
        node.left = AVLTree._build_balanced(items, low, mid)
        node.right = AVLTree._build_balanced(items, mid, high)
        _update(node)
        return node

    # ------------------------------------------------------------------
    # Invariant checking (used by the test-suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError when AVL/BST/size invariants are violated."""
        self._check(self._root, None, None)

    def _check(self, node: Optional[_Node], low: Any, high: Any) -> int:
        if node is None:
            return 0
        if low is not None:
            assert node.key > low, "BST order violated"
        if high is not None:
            assert node.key < high, "BST order violated"
        left_height = self._check(node.left, low, node.key)
        right_height = self._check(node.right, node.key, high)
        assert abs(left_height - right_height) <= 1, "AVL balance violated"
        assert node.height == 1 + max(left_height, right_height), "height bookkeeping broken"
        assert node.size == 1 + _size(node.left) + _size(node.right), "size bookkeeping broken"
        return node.height
