"""S-AVL structures maintaining the meaningful object set ``M_i``."""

from .amortized import AmortizedSAVLBuilder
from .meaningful import EmptyMeaningfulSet, MeaningfulSet, SortedMeaningfulSet
from .savl import SAVL
from .segmented import SegmentedSAVL

__all__ = [
    "AmortizedSAVLBuilder",
    "EmptyMeaningfulSet",
    "MeaningfulSet",
    "SortedMeaningfulSet",
    "SAVL",
    "SegmentedSAVL",
]
