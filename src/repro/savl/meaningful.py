"""Abstractions over the meaningful object set ``M_0``.

The SAP framework only ever interacts with ``M_0`` through three
operations: pop the best live object (to promote it into the candidate set
when a front candidate expires), drop expired entries, and report the
current size (for the candidate-count metric).  This module defines that
protocol and provides the simplest implementation — a sorted list produced
by a plain re-scan of the partition — which is what SAP uses when the S-AVL
structure is disabled (the "Algorithm 1 without S-AVL" rows of Table 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Tuple

from ..core.object import StreamObject

RankKey = Tuple[float, int]


class MeaningfulSet(ABC):
    """Protocol of every ``M_0`` container."""

    @abstractmethod
    def pop_best(self, watermark_t: int) -> Optional[StreamObject]:
        """Remove and return the best live object (``t >= watermark_t``).

        Returns ``None`` when no live object remains.
        """

    @abstractmethod
    def prune_expired(self, watermark_t: int) -> None:
        """Drop every entry that has already expired."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of objects currently stored (live upper bound)."""

    def advance(self, expired_prefix: int) -> None:
        """Notify the container that ``expired_prefix`` objects of its
        partition have expired.  Segmented containers use this hook to
        trigger deferred unit scans; others ignore it."""


class SortedMeaningfulSet(MeaningfulSet):
    """``M_0`` as a plain list sorted by rank key (re-scan formation).

    This is the structure SAP falls back to when the S-AVL is disabled: the
    partition is re-scanned, the qualifying objects are sorted once, and
    promotions pop from the high end.
    """

    def __init__(self, objects: Iterable[StreamObject]) -> None:
        self._objects: List[StreamObject] = sorted(objects, key=lambda o: o.rank_key)

    def __len__(self) -> int:
        return len(self._objects)

    def pop_best(self, watermark_t: int) -> Optional[StreamObject]:
        while self._objects:
            best = self._objects[-1]
            if best.t < watermark_t:
                self._objects.pop()
                continue
            self._objects.pop()
            return best
        return None

    def prune_expired(self, watermark_t: int) -> None:
        if not self._objects:
            return
        self._objects = [obj for obj in self._objects if obj.t >= watermark_t]


class EmptyMeaningfulSet(MeaningfulSet):
    """Placeholder used when ``P_0.ρ ≥ k`` and ``M_0`` is provably empty."""

    def __len__(self) -> int:
        return 0

    def pop_best(self, watermark_t: int) -> Optional[StreamObject]:
        return None

    def prune_expired(self, watermark_t: int) -> None:
        return None
