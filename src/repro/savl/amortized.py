"""Amortized proactive formation of the S-AVL (Section 5.1 of the paper).

Instead of scanning the whole front partition when it reaches the front of
the window, SAP can spread the scan of the *next* partition ``P_1`` over the
period during which ``P_0`` expires: "every time when s objects of P_0 slide
out of the window, we check s objects in P_1".  By the time ``P_1`` becomes
the front, its S-AVL is ready and promotion can start immediately.

The builder below owns a partially-built :class:`~repro.savl.savl.SAVL` and
a cursor over the partition's objects in reverse arrival order.  The
framework calls :meth:`step` once per slide with the number of objects that
just expired, and :meth:`finish` when the partition actually becomes the
front (completing any remainder in one go — e.g. when ``P_1`` is larger
than ``P_0`` was).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..core.partition import Partition
from .savl import SAVL

RankKey = Tuple[float, int]


class AmortizedSAVLBuilder:
    """Incremental construction of a partition's S-AVL."""

    def __init__(
        self,
        partition: Partition,
        num_stacks: int,
        global_threshold: Optional[RankKey] = None,
        exclude_keys: Optional[Set[RankKey]] = None,
    ) -> None:
        if num_stacks <= 0:
            raise ValueError("the builder needs at least one stack")
        self.partition = partition
        self._exclude = set(exclude_keys or set())
        self._savl = SAVL(num_stacks=num_stacks, global_threshold=global_threshold)
        # Objects are consumed in reverse arrival order, as required by the
        # S-AVL stack invariants.
        self._pending = sorted(partition.objects, key=lambda o: o.t, reverse=True)
        self._cursor = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._cursor >= len(self._pending)

    @property
    def remaining(self) -> int:
        return len(self._pending) - self._cursor

    @property
    def scanned(self) -> int:
        return self._cursor

    # ------------------------------------------------------------------
    def step(self, count: int) -> int:
        """Scan up to ``count`` more objects; return how many were scanned."""
        if count <= 0 or self.done:
            return 0
        end = min(self._cursor + count, len(self._pending))
        for index in range(self._cursor, end):
            obj = self._pending[index]
            if obj.rank_key in self._exclude:
                continue
            self._savl.push(obj)
        scanned = end - self._cursor
        self._cursor = end
        return scanned

    def finish(self) -> SAVL:
        """Complete the construction and return the finished S-AVL."""
        self.step(self.remaining)
        return self._savl
