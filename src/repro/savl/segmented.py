"""Segmentation-based S-AVL construction — the UBSA algorithm (Section 5.2).

When the enhanced dynamic partitioner produces a partition, it attaches the
per-unit summaries ``L_i`` built by TBUI.  UBSA exploits them twice:

* **Phase 1** (when the partition becomes the front of the window): only the
  non-k-units and the top-k summaries of the k-units are scanned.  A
  non-k-unit whose maximum score falls below the global threshold ``F_θ`` is
  skipped without touching its objects.
* **Phase 2** (as expiration approaches a k-unit): the k-unit receives its
  own S-AVL, built just before its objects start expiring.  When the k-th
  best summary entry of the unit already falls below the (monotonically
  non-decreasing) threshold ``F_θ``, the unit's remaining objects are all
  globally pruned and the scan is skipped entirely.

This keeps ``|M_0|`` bounded by ``O(k·√(n / max(s,k)))`` regardless of the
partition size (Theorem 4) while preserving exactness: a non-top-k object of
a deferred k-unit cannot enter the query result before its unit starts
expiring, because the unit's k live summary objects outrank it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from ..core.object import StreamObject
from ..core.partition import Partition, UnitSummary
from .meaningful import MeaningfulSet
from .savl import SAVL

RankKey = Tuple[float, int]
ThresholdProvider = Callable[[], Optional[RankKey]]


class _DeferredUnit:
    """Bookkeeping for a k-unit whose full scan is postponed."""

    __slots__ = ("unit", "index", "scanned")

    def __init__(self, unit: UnitSummary, index: int) -> None:
        self.unit = unit
        self.index = index
        self.scanned = False


class SegmentedSAVL(MeaningfulSet):
    """UBSA-built meaningful object set for a partition with unit metadata."""

    def __init__(
        self,
        partition: Partition,
        num_stacks: int,
        threshold_provider: ThresholdProvider,
        exclude_keys: Optional[Set[RankKey]] = None,
    ) -> None:
        if partition.units is None:
            raise ValueError("SegmentedSAVL requires a partition with unit metadata")
        self._partition = partition
        self._num_stacks = num_stacks
        self._threshold_provider = threshold_provider
        self._exclude = set(exclude_keys or set())
        self._deferred: List[_DeferredUnit] = []
        self._unit_savls: List[SAVL] = []
        self._skipped_units = 0
        self._main = self._build_phase_one()

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _build_phase_one(self) -> SAVL:
        threshold = self._threshold_provider()
        main = SAVL(num_stacks=self._num_stacks, global_threshold=threshold)
        units = self._partition.units or []
        for unit_index in range(len(units) - 1, -1, -1):
            unit = units[unit_index]
            if unit.is_k_unit:
                contributors = sorted(unit.summary, key=lambda o: o.t, reverse=True)
                self._deferred.append(_DeferredUnit(unit, unit_index))
            else:
                if threshold is not None and unit.max_key <= threshold:
                    self._skipped_units += 1
                    continue
                contributors = list(
                    reversed(self._partition.objects[unit.start : unit.end])
                )
            for obj in contributors:
                if obj.rank_key in self._exclude:
                    continue
                main.push(obj)
        # Deferred units were collected in reverse order; keep them in
        # arrival order so the expiry-driven trigger can walk them forward.
        self._deferred.reverse()
        return main

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def advance(self, expired_prefix: int) -> None:
        """Trigger deferred unit scans as expiration progresses.

        A k-unit is scanned as soon as the unit immediately before it starts
        expiring (and immediately for the first two units), which is always
        before any of its own objects leave the window.
        """
        units = self._partition.units or []
        for deferred in self._deferred:
            if deferred.scanned:
                continue
            index = deferred.index
            if index <= 1:
                trigger_at = 0
            else:
                trigger_at = units[index - 1].start
            if expired_prefix >= trigger_at or expired_prefix >= deferred.unit.start:
                self._scan_unit(deferred)

    def _scan_unit(self, deferred: _DeferredUnit) -> None:
        deferred.scanned = True
        unit = deferred.unit
        threshold = self._threshold_provider()
        if threshold is not None and unit.min_summary_key < threshold:
            # Every object of the unit outside its top-k summary ranks below
            # the threshold, hence below k live candidates of later
            # partitions: nothing new can become meaningful.
            self._skipped_units += 1
            return
        summary_keys = {obj.rank_key for obj in unit.summary}
        unit_savl = SAVL(num_stacks=self._num_stacks, global_threshold=threshold)
        for obj in reversed(self._partition.objects[unit.start : unit.end]):
            if obj.rank_key in summary_keys or obj.rank_key in self._exclude:
                continue
            unit_savl.push(obj)
        if len(unit_savl):
            self._unit_savls.append(unit_savl)

    # ------------------------------------------------------------------
    # MeaningfulSet protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._main) + sum(len(savl) for savl in self._unit_savls)

    def pop_best(self, watermark_t: int) -> Optional[StreamObject]:
        best_container: Optional[SAVL] = None
        best_key: Optional[RankKey] = None
        for container in [self._main, *self._unit_savls]:
            key = container.peek_best(watermark_t)
            if key is None:
                continue
            if best_key is None or key > best_key:
                best_key = key
                best_container = container
        if best_container is None:
            return None
        return best_container.pop_best(watermark_t)

    def prune_expired(self, watermark_t: int) -> None:
        self._main.prune_expired(watermark_t)
        for savl in self._unit_savls:
            savl.prune_expired(watermark_t)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def skipped_units(self) -> int:
        """Units whose detailed scan was avoided thanks to ``L_i``."""
        return self._skipped_units

    @property
    def deferred_unit_count(self) -> int:
        return len(self._deferred)

    @property
    def scanned_unit_count(self) -> int:
        return sum(1 for deferred in self._deferred if deferred.scanned)
