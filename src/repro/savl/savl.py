"""The baseline S-AVL structure (Section 5.1 of the paper).

S-AVL stores the meaningful objects of a partition in ``k − ρ`` stacks whose
top entries are indexed by an AVL tree:

* objects are scanned in *reverse arrival order*, so every entry of a stack
  arrived no later than the entries below it — within a stack the top entry
  has the highest score and the earliest arrival;
* an object that cannot be pushed on any stack (its score is below every
  stack top) is dominated by at least ``k − ρ`` later-arriving objects of
  the same partition, which together with the ``ρ`` global dominators makes
  ``k`` dominators, so it is pruned;
* objects whose rank falls below the global threshold ``F_θ`` (the k-th best
  candidate contributed by later partitions) are pruned outright.

Promotion of the best remaining meaningful object is ``O(log k)``: read the
AVL maximum, pop it from its stack, and re-insert the stack's new top.
Because tops arrive earliest within their stack, expired entries always
surface at stack tops and can be discarded lazily.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.object import StreamObject
from ..structures.avl import AVLTree
from .meaningful import MeaningfulSet

RankKey = Tuple[float, int]


class SAVL(MeaningfulSet):
    """Stacks + AVL container for the meaningful objects of one partition."""

    def __init__(self, num_stacks: int, global_threshold: Optional[RankKey] = None) -> None:
        if num_stacks <= 0:
            raise ValueError("S-AVL needs at least one stack")
        self._num_stacks = num_stacks
        self._global_threshold = global_threshold
        self._stacks: List[List[StreamObject]] = []
        # Maps the rank key of each stack's top entry to the stack index.
        self._tops = AVLTree()
        self._size = 0
        self._pruned = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[StreamObject],
        num_stacks: int,
        global_threshold: Optional[RankKey] = None,
        exclude_keys: Optional[set] = None,
    ) -> "SAVL":
        """Build an S-AVL from a partition's objects.

        ``objects`` may be supplied in any order; they are scanned in
        reverse arrival order as the paper requires.  ``exclude_keys``
        (typically the partition's ``P_0^k``) are skipped.
        """
        savl = cls(num_stacks=num_stacks, global_threshold=global_threshold)
        ordered = sorted(objects, key=lambda o: o.t, reverse=True)
        exclude = exclude_keys or set()
        for obj in ordered:
            if obj.rank_key in exclude:
                continue
            savl.push(obj)
        return savl

    @classmethod
    def build_batched(
        cls,
        objects: Iterable[StreamObject],
        batch_size: int,
        num_stacks: int,
        global_threshold: Optional[RankKey] = None,
        exclude_keys: Optional[set] = None,
    ) -> "SAVL":
        """Build an S-AVL exploiting the slide granularity (Appendix C).

        Objects that arrive in the same slide expire in the same slide, so
        within each batch of ``batch_size`` objects only the ``num_stacks``
        best can ever become meaningful: the rest are dominated by
        same-batch objects that stay in the window exactly as long as they
        do.  The construction therefore selects the top ``num_stacks``
        objects per batch (after global pruning) and pushes only those, in
        reverse arrival order.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        savl = cls(num_stacks=num_stacks, global_threshold=global_threshold)
        exclude = exclude_keys or set()
        ordered = sorted(objects, key=lambda o: o.t)
        # Objects with the same arrival-order quotient t // s entered the
        # window in the same slide and will leave it in the same slide,
        # regardless of how the partition is aligned.
        batches: List[List[StreamObject]] = []
        for obj in ordered:
            group = obj.t // batch_size
            if not batches or batches[-1][0].t // batch_size != group:
                batches.append([])
            batches[-1].append(obj)
        for batch in reversed(batches):
            eligible = [obj for obj in batch if obj.rank_key not in exclude]
            eligible.sort(key=lambda o: o.rank_key, reverse=True)
            best = eligible[:num_stacks]
            for obj in sorted(best, key=lambda o: o.t, reverse=True):
                savl.push(obj)
        return savl

    def push(self, obj: StreamObject) -> bool:
        """Insert one object (scanned in reverse arrival order).

        Returns ``False`` when the object is pruned by the global threshold
        or by the local stack-top comparison.
        """
        if self._global_threshold is not None and obj.rank_key < self._global_threshold:
            self._pruned += 1
            return False

        if len(self._stacks) < self._num_stacks:
            self._stacks.append([obj])
            self._tops.insert(obj.rank_key, len(self._stacks) - 1)
            self._size += 1
            return True

        # Choose, among the stacks whose top ranks below the object, the one
        # with the largest top — this keeps the relative order of the AVL
        # entries unchanged (Section 5.1).
        target = self._best_stack_below(obj.rank_key)
        if target is None:
            self._pruned += 1
            return False

        stack = self._stacks[target]
        old_top = stack[-1]
        self._tops.remove(old_top.rank_key)
        stack.append(obj)
        self._tops.insert(obj.rank_key, target)
        self._size += 1
        return True

    def _best_stack_below(self, key: RankKey) -> Optional[int]:
        best: Optional[int] = None
        best_key: Optional[RankKey] = None
        for top_key, index in self._tops.items_descending():
            if top_key < key:
                best, best_key = index, top_key
                break
        del best_key
        return best

    # ------------------------------------------------------------------
    # MeaningfulSet protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def pop_best(self, watermark_t: int) -> Optional[StreamObject]:
        while self._tops:
            key, index = self._tops.max_item()
            obj = self._discard_top(index)
            assert obj.rank_key == key
            if obj.t >= watermark_t:
                return obj
        return None

    def peek_best(self, watermark_t: int) -> Optional[RankKey]:
        """Rank key of the best live entry without removing it.

        Expired entries encountered at stack tops are discarded on the way,
        which is safe because expired entries can only be stack tops.
        """
        while self._tops:
            key, index = self._tops.max_item()
            top = self._stacks[index][-1]
            if top.t >= watermark_t:
                return key
            self._discard_top(index)
        return None

    def prune_expired(self, watermark_t: int) -> None:
        # Expired entries can only be stack tops (tops arrive earliest in
        # their stack), so repeatedly discard expired tops.
        changed = True
        while changed:
            changed = False
            for key, index in list(self._tops.items()):
                top = self._stacks[index][-1]
                if top.t < watermark_t:
                    self._discard_top(index)
                    changed = True

    def _discard_top(self, stack_index: int) -> StreamObject:
        stack = self._stacks[stack_index]
        obj = stack.pop()
        self._tops.remove(obj.rank_key)
        self._size -= 1
        if stack:
            self._tops.insert(stack[-1].rank_key, stack_index)
        return obj

    # ------------------------------------------------------------------
    # Introspection (tests, metrics)
    # ------------------------------------------------------------------
    @property
    def stack_count(self) -> int:
        return len(self._stacks)

    @property
    def pruned_count(self) -> int:
        """Number of objects rejected during construction (statistics)."""
        return self._pruned

    def contents(self) -> List[StreamObject]:
        """All stored objects (any order); used by tests."""
        result: List[StreamObject] = []
        for stack in self._stacks:
            result.extend(stack)
        return result

    def check_invariants(self) -> None:
        """Validate the stack ordering invariants of Section 5.1."""
        for stack in self._stacks:
            for below, above in zip(stack, stack[1:]):
                assert below.rank_key <= above.rank_key, "stack score order violated"
                assert below.t >= above.t, "stack arrival order violated"
        live_tops = {stack[-1].rank_key for stack in self._stacks if stack}
        assert set(self._tops.keys()) == live_tops, "AVL tops out of sync"
        assert self._size == sum(len(stack) for stack in self._stacks)
