"""Command-line interface of the reproduction library.

Two subcommands are provided:

``run``
    Run one algorithm over one of the built-in datasets and print the
    summary (running time, average candidate count, memory) plus the final
    window's answer.

``compare``
    Run several algorithms over the same stream, verify that their answers
    agree, and print a comparison table.

Examples::

    python -m repro run --dataset STOCK --n 1000 --k 10 --s 50
    python -m repro compare --dataset TIMER --n 1000 --k 20 --s 50 \
        --algorithms SAP MinTopK k-skyband
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional, Sequence

from .core.interface import ContinuousTopKAlgorithm
from .core.query import TopKQuery
from .registry import algorithm_factories, create_algorithm, get_algorithm
from .runner.comparison import compare_algorithms
from .runner.engine import run_algorithm
from .streams import dataset_names, make_dataset

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]

#: Algorithms addressable from the command line: every entry of the unified
#: registry (:mod:`repro.registry`).  Kept as a module attribute for
#: backward compatibility; algorithms registered after import time are
#: still resolved because the parser re-reads the registry.
CLI_ALGORITHMS: Dict[str, AlgorithmFactory] = algorithm_factories()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous top-k queries over streaming data (SAP reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            default="TIMEU",
            choices=dataset_names(),
            help="built-in synthetic dataset to stream",
        )
        sub.add_argument("--objects", type=int, default=8000, help="stream length")
        sub.add_argument("--n", type=int, default=1000, help="window size")
        sub.add_argument("--k", type=int, default=10, help="result size")
        sub.add_argument("--s", type=int, default=50, help="slide size")

    run_parser = subparsers.add_parser("run", help="run a single algorithm")
    add_common(run_parser)
    run_parser.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm to run",
    )
    run_parser.add_argument(
        "--show", type=int, default=5, help="how many of the final top-k objects to print"
    )

    compare_parser = subparsers.add_parser("compare", help="compare several algorithms")
    add_common(compare_parser)
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["SAP", "MinTopK", "k-skyband"],
        choices=sorted(algorithm_factories()),
        help="algorithms to compare (answers are checked for agreement)",
    )
    return parser


def _query_from_args(args: argparse.Namespace) -> TopKQuery:
    return TopKQuery(n=args.n, k=args.k, s=args.s)


def _command_run(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    algorithm = create_algorithm(args.algorithm, query)
    report = run_algorithm(algorithm, stream)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()}")
    print(report.summary())
    if report.results:
        final = report.results[-1]
        print(f"final window top-{min(args.show, len(final))} scores:")
        for obj in list(final)[: args.show]:
            print(f"  score={obj.score:.6g}  t={obj.t}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    factories = [get_algorithm(name).factory for name in args.algorithms]
    outcome = compare_algorithms(factories, stream, query)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()}")
    print(f"agreement : {outcome.agree}")
    header = f"{'algorithm':<24} {'seconds':>9} {'candidates':>11} {'memory KB':>10}"
    print(header)
    print("-" * len(header))
    for name in outcome.names():
        report = outcome.report(name)
        print(
            f"{name:<24} {report.elapsed_seconds:9.3f} "
            f"{report.average_candidates:11.1f} {report.average_memory_kb:10.1f}"
        )
    return 0 if outcome.agree else 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the test-suite."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 1  # pragma: no cover
