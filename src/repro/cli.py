"""Command-line interface of the reproduction library.

The subcommand reference below is generated from the command registry
(:data:`COMMANDS`) at import time, so it always matches what the parser
actually provides — adding a command automatically documents it here.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import textwrap
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cluster import PLACEMENT_POLICIES, ShardedStreamEngine
from .control import AdaptiveController, Policy
from .core.interface import ContinuousTopKAlgorithm
from .core.query import TopKQuery
from .engine import StreamEngine
from .registry import algorithm_factories, create_algorithm, get_algorithm
from .runner.comparison import compare_algorithms
from .runner.engine import run_algorithm
from .serve import SLOW_CLIENT_POLICIES, ServeConfig, TopKServer
from .streams import dataset_names, make_dataset


def package_version() -> str:
    """The installed distribution's version, falling back to the source
    tree's ``repro.__version__`` when the package is not installed."""
    try:
        from importlib.metadata import version

        return version("repro-sap-topk")
    except Exception:
        from . import __version__

        return __version__

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]

#: Algorithms addressable from the command line: every entry of the unified
#: registry (:mod:`repro.registry`).  Kept as a module attribute for
#: backward compatibility; algorithms registered after import time are
#: still resolved because the parser re-reads the registry.
CLI_ALGORITHMS: Dict[str, AlgorithmFactory] = algorithm_factories()


@dataclass(frozen=True)
class CliCommand:
    """One subcommand: parser wiring, handler, and its documentation.

    The module docstring's command reference is generated from these
    records, so the registry is the single source of truth for what the
    CLI provides.
    """

    name: str
    help: str
    doc: str
    configure: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace], int]


#: Flags shared verbatim by several subcommands.  Each entry is the one
#: definition (argparse names + kwargs); commands opt in with
#: :func:`_add_flags`, so a shared flag cannot drift in spelling, default,
#: or semantics between ``repro serve``, ``repro shard``, ``repro
#: control``, and ``repro trace``.
SHARED_FLAGS: Dict[str, Tuple[Tuple[str, ...], Dict[str, object]]] = {
    "transport": (
        ("--transport",),
        dict(
            default="queue",
            choices=("queue", "shm"),
            help="sharded data path to the workers: per-worker command "
            "queues, or zero-copy shared-memory rings carrying columnar "
            "chunks",
        ),
    ),
    "durability-dir": (
        ("--durability-dir",),
        dict(
            default=None,
            metavar="DIR",
            help="durability journal directory (checkpoints + slide-"
            "granular write-ahead log); restarting with the same "
            "directory recovers the exact pre-crash state",
        ),
    ),
    "policy": (
        ("--policy",),
        dict(
            default=None,
            metavar="PATH",
            help="JSON adaptation policy file (see "
            "examples/control_policy.json); default: the command's "
            "built-in policy",
        ),
    ),
}


def _add_flags(sub: argparse.ArgumentParser, *names: str) -> None:
    """Attach shared flags by registry name (one definition, no drift)."""
    for name in names:
        flags, kwargs = SHARED_FLAGS[name]
        sub.add_argument(*flags, **dict(kwargs))


def _add_common(sub: argparse.ArgumentParser, include_k: bool = True) -> None:
    """The dataset/query flags shared by the subcommands.  ``include_k``
    is off for commands that take their own multi-valued ``--k``."""
    sub.add_argument(
        "--dataset",
        default="TIMEU",
        choices=dataset_names(),
        help="built-in synthetic dataset to stream",
    )
    sub.add_argument("--objects", type=int, default=8000, help="stream length")
    sub.add_argument("--n", type=int, default=1000, help="window size")
    if include_k:
        sub.add_argument("--k", type=int, default=10, help="result size")
    sub.add_argument("--s", type=int, default=50, help="slide size")


def _query_from_args(args: argparse.Namespace) -> TopKQuery:
    return TopKQuery(n=args.n, k=args.k, s=args.s)


def _resume_offset(engine) -> int:
    """Where a recovered engine's arrival clock resumes (0 when fresh).

    Durable engines enforce a strictly increasing ``t`` across restarts,
    so a re-run of a CLI workload must shift its dataset past the
    journaled tail instead of starting over at ``t=0``.
    """
    report = getattr(engine, "recovery_report", None)
    if report is not None:
        return int(report.next_t)
    status = getattr(engine, "durability_status", None)
    if callable(status):
        # Every shard sees the whole dense-t stream; the furthest shard's
        # ingest count is the next arrival index.
        return max((int(e.get("ingested") or 0) for e in status()), default=0)
    return 0


def _shift_stream(stream, offset: int):
    """Re-stamp a dataset's arrival order to continue a recovered clock."""
    if not offset:
        return stream
    from .core.object import StreamObject

    return [
        StreamObject(obj.score, obj.t + offset, payload=obj.payload)
        for obj in stream
    ]


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _configure_run(sub: argparse.ArgumentParser) -> None:
    _add_common(sub)
    sub.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm to run",
    )
    sub.add_argument(
        "--show", type=int, default=5, help="how many of the final top-k objects to print"
    )


def _command_run(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    algorithm = create_algorithm(args.algorithm, query)
    report = run_algorithm(algorithm, stream)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()}")
    print(report.summary())
    if report.results:
        final = report.results[-1]
        print(f"final window top-{min(args.show, len(final))} scores:")
        for obj in list(final)[: args.show]:
            print(f"  score={obj.score:.6g}  t={obj.t}")
    return 0


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def _configure_compare(sub: argparse.ArgumentParser) -> None:
    _add_common(sub)
    sub.add_argument(
        "--algorithms",
        nargs="+",
        default=["SAP", "MinTopK", "k-skyband"],
        choices=sorted(algorithm_factories()),
        help="algorithms to compare (answers are checked for agreement)",
    )


def _command_compare(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    factories = [get_algorithm(name).factory for name in args.algorithms]
    outcome = compare_algorithms(factories, stream, query)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()}")
    print(f"agreement : {outcome.agree}")
    header = f"{'algorithm':<24} {'seconds':>9} {'candidates':>11} {'memory KB':>10}"
    print(header)
    print("-" * len(header))
    for name in outcome.names():
        report = outcome.report(name)
        print(
            f"{name:<24} {report.elapsed_seconds:9.3f} "
            f"{report.average_candidates:11.1f} {report.average_memory_kb:10.1f}"
        )
    return 0 if outcome.agree else 2


# ----------------------------------------------------------------------
# multi
# ----------------------------------------------------------------------
def _configure_multi(sub: argparse.ArgumentParser) -> None:
    _add_common(sub, include_k=False)
    sub.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[5, 10, 20, 50],
        help="result sizes; one query per value, all sharing the window shape",
    )
    sub.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm backing every query",
    )
    sub.add_argument(
        "--baseline",
        action="store_true",
        help="also run each query on its own engine and report the speedup",
    )


def _command_multi(args: argparse.Namespace) -> int:
    stream = list(make_dataset(args.dataset).take(args.objects))
    queries = [TopKQuery(n=args.n, k=min(k, args.n), s=min(args.s, args.n)) for k in args.k]

    engine = StreamEngine(keep_results=False, return_results=False)
    # Clamping k to n (or repeated --k values) can produce duplicate result
    # sizes; suffix repeats so every query keeps a unique subscription name.
    seen: Dict[int, int] = {}
    subscriptions = []
    for query in queries:
        seen[query.k] = seen.get(query.k, 0) + 1
        name = f"top-{query.k}" if seen[query.k] == 1 else f"top-{query.k}#{seen[query.k]}"
        subscriptions.append(engine.subscribe(name, query, algorithm=args.algorithm))
    started = time.perf_counter()
    engine.push_many(stream)
    engine.flush()
    shared_seconds = time.perf_counter() - started

    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"plane     : {len(queries)} queries over n={args.n}, s={args.s} "
          f"({args.algorithm})")
    for group in engine.groups():
        for plan in group["plans"]:
            print(f"plan      : {plan['kind']} at k_max={plan['k_max']} "
                  f"shared by {len(plan['members'])} queries")
    throughput = args.objects / shared_seconds if shared_seconds else float("inf")
    print(f"shared    : {shared_seconds:.3f}s ({throughput:,.0f} objects/s)")

    header = f"{'query':<12} {'slides':>7} {'candidates':>11} {'p95 latency':>12}"
    print(header)
    print("-" * len(header))
    for subscription in subscriptions:
        stats = subscription.stats()
        print(
            f"{subscription.name:<12} {int(stats['slides']):>7} "
            f"{stats['average_candidates']:>11.1f} {stats['p95_latency']:>12.6f}"
        )

    if args.baseline:
        started = time.perf_counter()
        for query in queries:
            solo = StreamEngine(keep_results=False, return_results=False)
            solo.subscribe("solo", query, algorithm=args.algorithm)
            solo.push_many(stream)
            solo.flush()
        independent_seconds = time.perf_counter() - started
        speedup = independent_seconds / shared_seconds if shared_seconds else float("inf")
        print(f"baseline  : {independent_seconds:.3f}s on independent engines "
              f"-> {speedup:.2f}x speedup from sharing")
    return 0


# ----------------------------------------------------------------------
# control
# ----------------------------------------------------------------------
def _configure_control(sub: argparse.ArgumentParser) -> None:
    _add_common(sub)
    sub.set_defaults(dataset="DRIFT", objects=12_000)
    sub.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm the workload starts on (tactics may change it)",
    )
    _add_flags(sub, "policy", "durability-dir")
    sub.add_argument(
        "--latency-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-slide latency budget for the latency analyzer "
        "(with --policy, overrides the file's budget)",
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="dump the adaptation log and statistics as JSON",
    )


def _command_control(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    if args.policy is not None:
        policy = Policy.from_file(args.policy)
        if args.latency_budget is not None:
            # The flag overrides (or supplies) the file's budget; make sure
            # the latency analyzer actually runs so the budget has effect.
            from .control.policy import DEFAULT_LATENCY_ANALYZER

            policy.latency_budget_seconds = args.latency_budget
            policy.analyzer_config.setdefault(
                "latency", dict(DEFAULT_LATENCY_ANALYZER)
            )
    else:
        policy = Policy.default(latency_budget_seconds=args.latency_budget)

    if args.durability_dir is not None:
        engine = StreamEngine.recover(
            args.durability_dir, keep_results=False, return_results=False
        )
    else:
        engine = StreamEngine(keep_results=False, return_results=False)
    if "watch" in engine.subscriptions():
        # A recovered journal already carries the subscription.
        subscription = engine.subscription("watch")
    else:
        subscription = engine.subscribe("watch", query, algorithm=args.algorithm)
    stream = _shift_stream(stream, _resume_offset(engine))
    controller = AdaptiveController(policy)
    engine.attach_controller(controller)
    started = time.perf_counter()
    engine.push_many(stream)
    engine.flush()
    elapsed = time.perf_counter() - started

    stats = subscription.stats()
    events = controller.events()
    accuracy = controller.accuracy_report()

    if args.json:
        print(
            json.dumps(
                {
                    "dataset": args.dataset,
                    "objects": args.objects,
                    "query": query.describe(),
                    "algorithm": args.algorithm,
                    "seconds": elapsed,
                    "policy": policy.describe(),
                    "events": [event.as_dict() for event in events],
                    "stats": stats,
                    "accuracy": accuracy,
                },
                indent=2,
            )
        )
        return 0

    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()} on {args.algorithm}")
    throughput = args.objects / elapsed if elapsed else float("inf")
    print(f"run       : {elapsed:.3f}s ({throughput:,.0f} objects/s)")
    print(
        f"latency   : p50={stats['p50_latency']:.6f}s "
        f"p95={stats['p95_latency']:.6f}s p99={stats['p99_latency']:.6f}s"
    )
    applied = [event for event in events if event.applied]
    print(f"adaptation: {len(applied)} applied, {len(events) - len(applied)} declined")
    if events:
        header = f"{'slide':>6} {'query':<10} {'tactic':<18} {'trigger':<20} applied"
        print(header)
        print("-" * len(header))
        for event in events:
            print(
                f"{event.slide_index:>6} {event.subscription:<10} "
                f"{event.tactic:<18} {event.trigger:<20} {event.applied}"
            )
    if accuracy["exact"]:
        print("accuracy  : exact (no load shedding engaged)")
    else:
        print(
            f"accuracy  : approximate — shed {accuracy['shed']} of "
            f"{accuracy['shed'] + accuracy['admitted']} objects "
            f"({accuracy['shed_fraction']:.1%})"
        )
    return 0


# ----------------------------------------------------------------------
# shard
# ----------------------------------------------------------------------
def _configure_shard(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--dataset",
        default="STOCK",
        choices=dataset_names(),
        help="built-in synthetic dataset to stream",
    )
    sub.add_argument("--objects", type=int, default=20_000, help="stream length")
    sub.add_argument("--n", type=int, default=1000, help="base window size")
    sub.add_argument("--s", type=int, default=50, help="base slide size")
    sub.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[5, 10, 20, 50],
        help="result sizes, cycled over the generated queries",
    )
    sub.add_argument("--shards", type=int, default=4, help="worker processes")
    _add_flags(sub, "transport", "durability-dir", "policy")
    sub.add_argument(
        "--queries",
        type=int,
        default=8,
        help="number of queries; window shapes alternate between (n, s) "
        "and (n/2, s/2) to form a mixed-window workload",
    )
    sub.add_argument(
        "--placement",
        default="least-loaded",
        choices=sorted(PLACEMENT_POLICIES),
        help="placement policy assigning queries to shards: least-loaded "
        "(default here) spreads the demo workload over every shard; "
        "hash-window co-locates same-shape queries to preserve their "
        "shared k_max plans, at the mercy of how the shapes hash",
    )
    sub.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm backing every query",
    )
    sub.add_argument(
        "--baseline",
        action="store_true",
        help="also run the workload on one single-process engine and "
        "report the sharding speedup",
    )


def _shard_workload(args: argparse.Namespace) -> List[Tuple[str, TopKQuery]]:
    """The mixed-window workload of ``repro shard``: ``--queries`` queries
    alternating between the base shape and its half-size variant, cycling
    through the ``--k`` list."""
    shapes = [(args.n, args.s), (max(2, args.n // 2), max(1, args.s // 2))]
    workload = []
    for index in range(args.queries):
        n, s = shapes[index % len(shapes)]
        k = min(args.k[index % len(args.k)], n)
        workload.append((f"user-{index}", TopKQuery(n=n, k=k, s=s)))
    return workload


def _command_shard(args: argparse.Namespace) -> int:
    stream = list(make_dataset(args.dataset).take(args.objects))
    workload = _shard_workload(args)

    with ShardedStreamEngine(
        args.shards,
        placement=args.placement,
        transport=args.transport,
        durability_dir=args.durability_dir,
    ) as engine:
        for name, query in workload:
            if name not in engine.subscriptions():
                engine.subscribe(
                    name, query, algorithm=args.algorithm, keep_results=False
                )
        if args.durability_dir is not None:
            stream = _shift_stream(stream, _resume_offset(engine))
        autoscaler = None
        if args.policy is not None:
            # A cluster policy puts the worker pool itself under MAPE-K
            # control: spawn-shard / retire-shard rules react to the
            # pressure samples taken after every pushed block.
            from .cluster import ShardAutoscaler

            autoscaler = ShardAutoscaler(engine, policy=Policy.from_file(args.policy))
        started = time.perf_counter()
        if autoscaler is None:
            engine.push_many(stream)
        else:
            block = max(1, len(stream) // 16)
            for start in range(0, len(stream), block):
                engine.push_many(stream[start : start + block])
                autoscaler.tick()
        engine.synchronize()
        sharded_seconds = time.perf_counter() - started

        print(f"dataset   : {args.dataset} ({args.objects} objects)")
        print(
            f"plane     : {len(workload)} queries on {args.shards} shards "
            f"({args.placement} placement, {args.algorithm})"
        )
        for record in engine.describe_shards():
            members = ", ".join(record["members"]) or "-"
            print(f"shard {record['shard']}   : load={record['load']:<8} {members}")
        throughput = args.objects / sharded_seconds if sharded_seconds else float("inf")
        print(f"sharded   : {sharded_seconds:.3f}s ({throughput:,.0f} objects/s)")
        merged = engine.aggregate_stats()
        print(
            f"latency   : p50={merged['p50_latency']:.6f}s "
            f"p95={merged['p95_latency']:.6f}s p99={merged['p99_latency']:.6f}s "
            f"(merged from {int(merged['latency_samples'])} samples)"
        )
        if autoscaler is not None:
            applied = [e for e in autoscaler.events() if e["applied"]]
            print(
                f"autoscale : {len(autoscaler.events())} ticks, "
                f"{len(applied)} pool changes, final width {engine.shards}"
            )
            for event in applied:
                print(
                    f"  tick {event['tick']:>3}: {event['symptom']} -> "
                    f"{event['tactic']} {event['detail']}"
                )

    if args.baseline:
        solo = StreamEngine(keep_results=False, return_results=False)
        for name, query in workload:
            solo.subscribe(name, query, algorithm=args.algorithm)
        started = time.perf_counter()
        solo.push_many(stream)
        solo.flush()
        solo_seconds = time.perf_counter() - started
        speedup = solo_seconds / sharded_seconds if sharded_seconds else float("inf")
        print(
            f"baseline  : {solo_seconds:.3f}s single-process "
            f"-> {speedup:.2f}x speedup from {args.shards} shards"
        )
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _configure_serve(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--host", default="127.0.0.1", help="interface to bind")
    sub.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 picks an ephemeral one)"
    )
    sub.add_argument(
        "--engine",
        default="local",
        choices=("local", "sharded"),
        help="execution plane behind the service: one in-process engine, "
        "or the sharded multi-process plane",
    )
    sub.add_argument(
        "--shards", type=int, default=2, help="worker processes (sharded engine only)"
    )
    _add_flags(sub, "transport", "durability-dir", "policy")
    sub.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="SLIDES",
        help="slides between durability checkpoints (with --durability-dir)",
    )
    sub.add_argument(
        "--max-subscriptions",
        type=int,
        default=1024,
        help="admission-control cap; creation past it gets 429 + Retry-After",
    )
    sub.add_argument(
        "--client-queue",
        type=int,
        default=256,
        help="per-client result queue bound (backpressure)",
    )
    sub.add_argument(
        "--slow-client",
        default="drop-oldest",
        choices=SLOW_CLIENT_POLICIES,
        help="what a full client queue means: drop the oldest queued "
        "answer (counted in stats) or disconnect the client",
    )
    sub.add_argument(
        "--dedupe-window",
        type=int,
        default=65_536,
        help="idempotency window: distinct event ids remembered for dedupe",
    )
    sub.add_argument(
        "--linger-ms",
        type=int,
        default=50,
        help="max time a partial (unaligned) ingest tail waits before "
        "being pushed anyway",
    )


def _command_serve(args: argparse.Namespace) -> int:
    config = ServeConfig(
        host=args.host,
        port=args.port,
        engine=args.engine,
        shards=args.shards,
        transport=args.transport,
        max_subscriptions=args.max_subscriptions,
        client_queue=args.client_queue,
        slow_client=args.slow_client,
        dedupe_window=args.dedupe_window,
        linger_ms=args.linger_ms,
        durability_dir=args.durability_dir,
        checkpoint_interval=args.checkpoint_interval,
    )

    engine_factory = None
    if args.policy is not None:
        policy = Policy.from_file(args.policy)

        def engine_factory(cfg: ServeConfig):
            from .serve.app import _default_engine_factory

            engine = _default_engine_factory(cfg)
            if cfg.engine == "sharded":
                engine.attach_controllers(policy)
            else:
                engine.attach_controller(AdaptiveController(policy))
            return engine

    async def main() -> None:
        server = TopKServer(config, engine_factory)
        await server.start()
        print(f"serving   : http://{config.host}:{server.port} ({config.engine} engine)")
        print("api       : POST /v1/subscriptions | POST /v1/events | "
              "GET /v1/subscriptions/<name>/stream (SSE) | .../ws (WebSocket)")
        if config.durability_dir is not None:
            recovery = server.recovery_info or {}
            print(f"durable   : {config.durability_dir} "
                  f"(recovered {recovery.get('recovered_subscriptions', 0)} "
                  f"subscriptions, resumed at t={recovery.get('resumed_at_t', 0)})")
        print("shutdown  : SIGINT/SIGTERM drain in-flight slides and close the engine")
        await server.serve_forever()
        totals = server.describe()
        print(f"drained   : {totals['ingest']['ingested']} events ingested, "
              f"{totals['sessions']['results_pushed']} answers pushed, "
              f"{totals['sessions']['results_dropped']} dropped to slow clients")

    asyncio.run(main())
    return 0


# ----------------------------------------------------------------------
# top
# ----------------------------------------------------------------------
def _configure_top(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--url",
        default="http://127.0.0.1:8765/metrics.json",
        help="metrics snapshot endpoint of a running ``repro serve``",
    )
    sub.add_argument(
        "--interval", type=float, default=1.0, help="seconds between repaints"
    )
    sub.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    sub.add_argument(
        "--no-color",
        action="store_true",
        help="plain output without ANSI escapes (also implied by a pipe)",
    )


def _command_top(args: argparse.Namespace) -> int:
    from .obs import run_top

    color = False if args.no_color else None
    try:
        frames = run_top(
            args.url, interval=args.interval, iterations=args.iterations, color=color
        )
    except OSError as error:
        print(f"repro top: cannot reach {args.url}: {error}")
        return 1
    return 0 if frames else 1


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def _configure_trace(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--dataset",
        default="STOCK",
        choices=dataset_names(),
        help="built-in synthetic dataset to stream",
    )
    sub.add_argument("--objects", type=int, default=10_000, help="stream length")
    sub.add_argument("--n", type=int, default=1000, help="base window size")
    sub.add_argument("--s", type=int, default=50, help="base slide size")
    sub.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[5, 10, 20, 50],
        help="result sizes, cycled over the generated queries",
    )
    sub.add_argument("--shards", type=int, default=2, help="worker processes")
    _add_flags(sub, "transport")
    sub.add_argument(
        "--queries",
        type=int,
        default=4,
        help="number of queries (mixed-window workload, as in ``repro shard``)",
    )
    sub.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm backing every query",
    )
    sub.add_argument(
        "--output",
        "-o",
        default="trace.json",
        metavar="PATH",
        help="where to write the Chrome trace-event JSON",
    )


def _command_trace(args: argparse.Namespace) -> int:
    from .obs import write_chrome_trace

    stream = list(make_dataset(args.dataset).take(args.objects))
    workload = _shard_workload(args)

    with ShardedStreamEngine(args.shards, transport=args.transport) as engine:
        for name, query in workload:
            engine.subscribe(name, query, algorithm=args.algorithm, keep_results=False)
        engine.set_tracing(True)
        started = time.perf_counter()
        engine.push_many(stream)
        engine.synchronize()
        elapsed = time.perf_counter() - started
        spans = engine.collect_spans()

    write_chrome_trace(spans, args.output)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(
        f"plane     : {len(workload)} queries on {args.shards} shards "
        f"({args.transport} transport, {args.algorithm})"
    )
    print(f"run       : {elapsed:.3f}s traced")
    per_stage: Dict[str, int] = {}
    for span in spans:
        per_stage[span.stage] = per_stage.get(span.stage, 0) + 1
    stages = ", ".join(f"{stage}={count}" for stage, count in sorted(per_stage.items()))
    print(f"spans     : {len(spans)} ({stages})")
    print(f"trace     : {args.output} (open at chrome://tracing or ui.perfetto.dev)")
    return 0


# ----------------------------------------------------------------------
# The command registry: the single source of truth of the CLI surface.
# ----------------------------------------------------------------------
COMMANDS: List[CliCommand] = [
    CliCommand(
        name="run",
        help="run a single algorithm",
        doc="Run one algorithm over one of the built-in datasets and print "
        "the summary (running time, average candidate count, memory) plus "
        "the final window's answer.",
        configure=_configure_run,
        run=_command_run,
    ),
    CliCommand(
        name="compare",
        help="compare several algorithms",
        doc="Run several algorithms over the same stream, verify that their "
        "answers agree, and print a comparison table.",
        configure=_configure_compare,
        run=_command_compare,
    ),
    CliCommand(
        name="multi",
        help="run several same-window queries on the shared plane",
        doc="Run several queries with one window shape but different result "
        "sizes ``k`` through the shared multi-query plane (one query group, "
        "one ``k_max`` execution plan) and print per-query statistics plus "
        "the plane's throughput against independent engines.",
        configure=_configure_multi,
        run=_command_multi,
    ),
    CliCommand(
        name="control",
        help="run a workload under the adaptive control plane",
        doc="Run a workload under the adaptive control plane "
        "(:mod:`repro.control`) and print the adaptation event log — which "
        "tactics fired, what triggered them, and at which slide — plus "
        "latency percentiles and the load-shedding accuracy account.  "
        "``--json`` dumps the full record.",
        configure=_configure_control,
        run=_command_control,
    ),
    CliCommand(
        name="shard",
        help="run a mixed-window workload on the sharded execution plane",
        doc="Run a mixed-window multi-query workload on the sharded "
        "execution plane (:mod:`repro.cluster`): N worker processes, a "
        "placement policy assigning queries to shards, and cluster-wide "
        "statistics merged from per-shard samples.  ``--durability-dir`` "
        "makes every worker journal its state for crash-exact recovery; "
        "``--policy`` puts the pool under the MAPE-K shard autoscaler.  "
        "``--baseline`` also runs the workload single-process and reports "
        "the speedup.",
        configure=_configure_shard,
        run=_command_shard,
    ),
    CliCommand(
        name="serve",
        help="run the network serving layer over a live engine",
        doc="Run the serving layer (:mod:`repro.serve`): an asyncio HTTP "
        "facade exposing subscription management, idempotent event "
        "ingestion (at-least-once producers get exactly-once engine "
        "semantics via an event-id dedupe window), per-client result push "
        "over SSE/WebSocket with bounded queues, and admission control — "
        "under the versioned ``/v1`` REST surface.  ``--durability-dir`` "
        "makes the whole service crash-exact: a restart pointed at the "
        "same directory recovers subscriptions, histories, and the "
        "arrival clock.  Runs until SIGINT/SIGTERM, then drains in-flight "
        "slides and closes the engine.",
        configure=_configure_serve,
        run=_command_serve,
    ),
    CliCommand(
        name="top",
        help="live terminal dashboard over a serving endpoint's metrics",
        doc="Poll the ``/metrics.json`` snapshot feed of a running ``repro "
        "serve`` and repaint a compact terminal dashboard "
        "(:mod:`repro.obs.top`): cluster-wide rates, delivery-latency "
        "quantiles from the merged histograms, per-shard counters, and "
        "per-stage pipeline timings.  Runs until interrupted unless "
        "``--iterations`` bounds the frame count.",
        configure=_configure_top,
        run=_command_top,
    ),
    CliCommand(
        name="trace",
        help="record a pipeline trace and export Chrome trace-event JSON",
        doc="Run a mixed-window workload on the sharded execution plane "
        "with pipeline tracing enabled, collect the spans from every "
        "process (facade, router, and workers — stitched by slide and "
        "chunk ids), and write them as Chrome trace-event JSON for "
        "chrome://tracing or Perfetto (:mod:`repro.obs.tracing`).",
        configure=_configure_trace,
        run=_command_trace,
    ),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous top-k queries over streaming data (SAP reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
        help="print the installed package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for command in COMMANDS:
        sub = subparsers.add_parser(command.name, help=command.help)
        command.configure(sub)
        sub.set_defaults(run=command.run)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the test-suite."""
    args = build_parser().parse_args(argv)
    return args.run(args)


def _command_reference() -> str:
    """The subcommand section of the module docstring, generated from
    :data:`COMMANDS` so documentation and parser cannot drift apart."""
    lines = [f"{len(COMMANDS)} subcommands are provided:", ""]
    for command in COMMANDS:
        lines.append(f"``{command.name}``")
        lines.extend(
            textwrap.wrap(
                command.doc, width=72, initial_indent="    ", subsequent_indent="    "
            )
        )
        lines.append("")
    lines.extend(
        [
            "``--version``",
            "    Print the installed package version (from the distribution",
            "    metadata, falling back to ``repro.__version__``) and exit.",
            "",
            "Examples::",
            "",
            "    python -m repro run --dataset STOCK --n 1000 --k 10 --s 50",
            "    python -m repro compare --dataset TIMER --n 1000 --k 20 --s 50 \\",
            "        --algorithms SAP MinTopK k-skyband",
            "    python -m repro multi --dataset STOCK --n 1000 --s 50 --k 5 10 20 50",
            "    python -m repro control --dataset DRIFT --objects 12000 --json",
            "    python -m repro shard --shards 4 --queries 8 --baseline",
            "    python -m repro serve --port 8765 --max-subscriptions 1000",
            "    python -m repro top --url http://127.0.0.1:8765/metrics.json",
            "    python -m repro trace --shards 2 --objects 10000 -o trace.json",
            "    python -m repro --version",
        ]
    )
    return "\n".join(lines)


__doc__ = (__doc__ or "") + "\n" + _command_reference()
