"""Command-line interface of the reproduction library.

Four subcommands are provided:

``run``
    Run one algorithm over one of the built-in datasets and print the
    summary (running time, average candidate count, memory) plus the final
    window's answer.

``compare``
    Run several algorithms over the same stream, verify that their answers
    agree, and print a comparison table.

``multi``
    Run several queries with one window shape but different result sizes
    ``k`` through the shared multi-query plane (one query group, one
    ``k_max`` execution plan) and print per-query statistics plus the
    plane's throughput against independent engines.

``control``
    Run a workload under the adaptive control plane (:mod:`repro.control`)
    and print the adaptation event log — which tactics fired, what
    triggered them, and at which slide — plus latency percentiles and the
    load-shedding accuracy account.  ``--json`` dumps the full record.

Examples::

    python -m repro run --dataset STOCK --n 1000 --k 10 --s 50
    python -m repro compare --dataset TIMER --n 1000 --k 20 --s 50 \
        --algorithms SAP MinTopK k-skyband
    python -m repro multi --dataset STOCK --n 1000 --s 50 --k 5 10 20 50
    python -m repro control --dataset DRIFT --objects 12000 --json
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Callable, Dict, Optional, Sequence

from .control import AdaptiveController, Policy
from .core.interface import ContinuousTopKAlgorithm
from .core.query import TopKQuery
from .engine import StreamEngine
from .registry import algorithm_factories, create_algorithm, get_algorithm
from .runner.comparison import compare_algorithms
from .runner.engine import run_algorithm
from .streams import dataset_names, make_dataset

AlgorithmFactory = Callable[[TopKQuery], ContinuousTopKAlgorithm]

#: Algorithms addressable from the command line: every entry of the unified
#: registry (:mod:`repro.registry`).  Kept as a module attribute for
#: backward compatibility; algorithms registered after import time are
#: still resolved because the parser re-reads the registry.
CLI_ALGORITHMS: Dict[str, AlgorithmFactory] = algorithm_factories()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous top-k queries over streaming data (SAP reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            default="TIMEU",
            choices=dataset_names(),
            help="built-in synthetic dataset to stream",
        )
        sub.add_argument("--objects", type=int, default=8000, help="stream length")
        sub.add_argument("--n", type=int, default=1000, help="window size")
        sub.add_argument("--k", type=int, default=10, help="result size")
        sub.add_argument("--s", type=int, default=50, help="slide size")

    run_parser = subparsers.add_parser("run", help="run a single algorithm")
    add_common(run_parser)
    run_parser.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm to run",
    )
    run_parser.add_argument(
        "--show", type=int, default=5, help="how many of the final top-k objects to print"
    )

    compare_parser = subparsers.add_parser("compare", help="compare several algorithms")
    add_common(compare_parser)
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["SAP", "MinTopK", "k-skyband"],
        choices=sorted(algorithm_factories()),
        help="algorithms to compare (answers are checked for agreement)",
    )

    multi_parser = subparsers.add_parser(
        "multi", help="run several same-window queries on the shared plane"
    )
    multi_parser.add_argument(
        "--dataset",
        default="TIMEU",
        choices=dataset_names(),
        help="built-in synthetic dataset to stream",
    )
    multi_parser.add_argument("--objects", type=int, default=8000, help="stream length")
    multi_parser.add_argument("--n", type=int, default=1000, help="window size")
    multi_parser.add_argument("--s", type=int, default=50, help="slide size")
    multi_parser.add_argument(
        "--k",
        type=int,
        nargs="+",
        default=[5, 10, 20, 50],
        help="result sizes; one query per value, all sharing the window shape",
    )
    multi_parser.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm backing every query",
    )
    multi_parser.add_argument(
        "--baseline",
        action="store_true",
        help="also run each query on its own engine and report the speedup",
    )

    control_parser = subparsers.add_parser(
        "control", help="run a workload under the adaptive control plane"
    )
    add_common(control_parser)
    control_parser.set_defaults(dataset="DRIFT", objects=12_000)
    control_parser.add_argument(
        "--algorithm",
        default="SAP",
        choices=sorted(algorithm_factories()),
        help="algorithm the workload starts on (tactics may change it)",
    )
    control_parser.add_argument(
        "--policy",
        default=None,
        metavar="PATH",
        help="JSON policy file (see examples/control_policy.json); "
        "default: the built-in drift/blowup policy",
    )
    control_parser.add_argument(
        "--latency-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-slide latency budget for the latency analyzer "
        "(with --policy, overrides the file's budget)",
    )
    control_parser.add_argument(
        "--json",
        action="store_true",
        help="dump the adaptation log and statistics as JSON",
    )
    return parser


def _query_from_args(args: argparse.Namespace) -> TopKQuery:
    return TopKQuery(n=args.n, k=args.k, s=args.s)


def _command_run(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    algorithm = create_algorithm(args.algorithm, query)
    report = run_algorithm(algorithm, stream)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()}")
    print(report.summary())
    if report.results:
        final = report.results[-1]
        print(f"final window top-{min(args.show, len(final))} scores:")
        for obj in list(final)[: args.show]:
            print(f"  score={obj.score:.6g}  t={obj.t}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    factories = [get_algorithm(name).factory for name in args.algorithms]
    outcome = compare_algorithms(factories, stream, query)
    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()}")
    print(f"agreement : {outcome.agree}")
    header = f"{'algorithm':<24} {'seconds':>9} {'candidates':>11} {'memory KB':>10}"
    print(header)
    print("-" * len(header))
    for name in outcome.names():
        report = outcome.report(name)
        print(
            f"{name:<24} {report.elapsed_seconds:9.3f} "
            f"{report.average_candidates:11.1f} {report.average_memory_kb:10.1f}"
        )
    return 0 if outcome.agree else 2


def _command_multi(args: argparse.Namespace) -> int:
    stream = list(make_dataset(args.dataset).take(args.objects))
    queries = [TopKQuery(n=args.n, k=min(k, args.n), s=min(args.s, args.n)) for k in args.k]

    engine = StreamEngine(keep_results=False, return_results=False)
    # Clamping k to n (or repeated --k values) can produce duplicate result
    # sizes; suffix repeats so every query keeps a unique subscription name.
    seen: Dict[int, int] = {}
    subscriptions = []
    for query in queries:
        seen[query.k] = seen.get(query.k, 0) + 1
        name = f"top-{query.k}" if seen[query.k] == 1 else f"top-{query.k}#{seen[query.k]}"
        subscriptions.append(engine.subscribe(name, query, algorithm=args.algorithm))
    started = time.perf_counter()
    engine.push_many(stream)
    engine.flush()
    shared_seconds = time.perf_counter() - started

    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"plane     : {len(queries)} queries over n={args.n}, s={args.s} "
          f"({args.algorithm})")
    for group in engine.groups():
        for plan in group["plans"]:
            print(f"plan      : {plan['kind']} at k_max={plan['k_max']} "
                  f"shared by {len(plan['members'])} queries")
    throughput = args.objects / shared_seconds if shared_seconds else float("inf")
    print(f"shared    : {shared_seconds:.3f}s ({throughput:,.0f} objects/s)")

    header = f"{'query':<12} {'slides':>7} {'candidates':>11} {'p95 latency':>12}"
    print(header)
    print("-" * len(header))
    for subscription in subscriptions:
        stats = subscription.stats()
        print(
            f"{subscription.name:<12} {int(stats['slides']):>7} "
            f"{stats['average_candidates']:>11.1f} {stats['p95_latency']:>12.6f}"
        )

    if args.baseline:
        started = time.perf_counter()
        for query in queries:
            solo = StreamEngine(keep_results=False, return_results=False)
            solo.subscribe("solo", query, algorithm=args.algorithm)
            solo.push_many(stream)
            solo.flush()
        independent_seconds = time.perf_counter() - started
        speedup = independent_seconds / shared_seconds if shared_seconds else float("inf")
        print(f"baseline  : {independent_seconds:.3f}s on independent engines "
              f"-> {speedup:.2f}x speedup from sharing")
    return 0


def _command_control(args: argparse.Namespace) -> int:
    query = _query_from_args(args)
    stream = make_dataset(args.dataset).take(args.objects)
    if args.policy is not None:
        policy = Policy.from_file(args.policy)
        if args.latency_budget is not None:
            # The flag overrides (or supplies) the file's budget; make sure
            # the latency analyzer actually runs so the budget has effect.
            from .control.policy import DEFAULT_LATENCY_ANALYZER

            policy.latency_budget_seconds = args.latency_budget
            policy.analyzer_config.setdefault(
                "latency", dict(DEFAULT_LATENCY_ANALYZER)
            )
    else:
        policy = Policy.default(latency_budget_seconds=args.latency_budget)

    engine = StreamEngine(keep_results=False, return_results=False)
    subscription = engine.subscribe("watch", query, algorithm=args.algorithm)
    controller = AdaptiveController(policy)
    engine.attach_controller(controller)
    started = time.perf_counter()
    engine.push_many(stream)
    engine.flush()
    elapsed = time.perf_counter() - started

    stats = subscription.stats()
    events = controller.events()
    accuracy = controller.accuracy_report()

    if args.json:
        print(
            json.dumps(
                {
                    "dataset": args.dataset,
                    "objects": args.objects,
                    "query": query.describe(),
                    "algorithm": args.algorithm,
                    "seconds": elapsed,
                    "policy": policy.describe(),
                    "events": [event.as_dict() for event in events],
                    "stats": stats,
                    "accuracy": accuracy,
                },
                indent=2,
            )
        )
        return 0

    print(f"dataset   : {args.dataset} ({args.objects} objects)")
    print(f"query     : {query.describe()} on {args.algorithm}")
    throughput = args.objects / elapsed if elapsed else float("inf")
    print(f"run       : {elapsed:.3f}s ({throughput:,.0f} objects/s)")
    print(
        f"latency   : p50={stats['p50_latency']:.6f}s "
        f"p95={stats['p95_latency']:.6f}s p99={stats['p99_latency']:.6f}s"
    )
    applied = [event for event in events if event.applied]
    print(f"adaptation: {len(applied)} applied, {len(events) - len(applied)} declined")
    if events:
        header = f"{'slide':>6} {'query':<10} {'tactic':<18} {'trigger':<20} applied"
        print(header)
        print("-" * len(header))
        for event in events:
            print(
                f"{event.slide_index:>6} {event.subscription:<10} "
                f"{event.tactic:<18} {event.trigger:<20} {event.applied}"
            )
    if accuracy["exact"]:
        print("accuracy  : exact (no load shedding engaged)")
    else:
        print(
            f"accuracy  : approximate — shed {accuracy['shed']} of "
            f"{accuracy['shed'] + accuracy['admitted']} objects "
            f"({accuracy['shed_fraction']:.1%})"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the test-suite."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "multi":
        return _command_multi(args)
    if args.command == "control":
        return _command_control(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 1  # pragma: no cover
