"""Sharded parallel execution plane: multi-process continuous top-k.

This package scales the push-based engine across CPU cores:
:class:`ShardedStreamEngine` places each subscription on one of N worker
processes (each hosting a full :class:`repro.StreamEngine`), fans the
stream out in slide-aligned chunks over multiprocessing queues, merges
per-shard answers and statistics, and rebalances live subscriptions
between shards through the serialization layer (:mod:`repro.core.state`).

See :mod:`repro.cluster.sharded` for the facade,
:mod:`repro.cluster.placement` for the placement policies,
:mod:`repro.cluster.router` / :mod:`repro.cluster.worker` for the process
plumbing, and :mod:`repro.cluster.merge` for result/statistics merging.
"""

from .autoscale import ShardAutoscaler, default_scaling_policy
from .merge import AggregatedKnowledge, merged_latency_stats
from .placement import (
    PLACEMENT_POLICIES,
    HashWindowPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    make_placement,
)
from .router import ShardError, ShardRouter
from .sharded import ShardedStreamEngine, ShardSubscription

__all__ = [
    "ShardedStreamEngine",
    "ShardSubscription",
    "PlacementPolicy",
    "HashWindowPlacement",
    "LeastLoadedPlacement",
    "PLACEMENT_POLICIES",
    "make_placement",
    "AggregatedKnowledge",
    "merged_latency_stats",
    "ShardAutoscaler",
    "default_scaling_policy",
    "ShardError",
    "ShardRouter",
]
