"""Shared-memory ring transport for the shard data path.

The queue transport moves every chunk through ``mp.Queue`` — a pickle in
the feeder thread, a pipe write, a pipe read, an unpickle.  This module
replaces that hot path with a fixed-slot single-producer/single-consumer
ring over :mod:`multiprocessing.shared_memory`: the router packs a chunk
into :func:`~repro.core.columnar.encode_chunk` bytes and memcpy's it into
the ring; the worker memcpy's it out and rebuilds the column block.  No
interpreter touches the bytes in between.

Handshake (seqlock-flavoured, no locks): every slot carries one ``state``
byte — ``FREE`` or ``FULL``.  The producer spins (with exponential backoff)
for ``FREE``, writes payload then length then flags, and flips the state to
``FULL`` last; the consumer mirrors this.  Slots are claimed in fixed
circular order by both sides, so a single byte per slot is the entire
protocol — exactly the store-release/load-acquire pairing a futex-based
ring would use, minus the wakeup syscall (waits are micro-sleeps instead).

Messages larger than one slot span consecutive slots (``MORE`` flag on all
but the last); a message larger than the whole ring is rejected at
construction time by sizing, and at send time with :class:`RingMessageTooLarge`.

Wraparound under slot exhaustion is the normal regime, not an edge case:
with ``slots * slot_size`` of buffer and a producer faster than the
consumer, every send eventually waits on the oldest slot — that wait *is*
the transport's backpressure, surfaced to the caller through the
``timeout`` / ``should_abort`` hooks of :meth:`ShmRing.send`.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Optional

#: Per-slot header: state u8, flags u8, pad u16, payload length u32.
_SLOT_HEADER = struct.Struct("<BBHI")
_FREE = 0
_FULL = 1
_FLAG_MORE = 1

#: Ring header: magic u32, version u16, pad u16, slots u32, slot size u32.
_RING_HEADER = struct.Struct("<IHHII")
_RING_MAGIC = 0x52_49_4E_47  # "RING"
_RING_VERSION = 1

#: Defaults sized for the sharded plane: 32 slots x 128 KiB = 4 MiB per
#: shard, holding ~8 maximum-size slide-aligned chunks in flight.
DEFAULT_SLOTS = 32
DEFAULT_SLOT_SIZE = 128 * 1024

#: Spin backoff bounds of the state-byte handshake.
_SPIN_MIN = 0.000001
_SPIN_MAX = 0.002


class RingError(RuntimeError):
    """Base error of the shm ring transport."""


class RingMessageTooLarge(RingError):
    """The payload cannot fit in the ring even when fully drained."""


class RingTimeout(RingError):
    """A send/recv wait exceeded its deadline."""


class RingClosed(RingError):
    """The peer vanished (``should_abort`` fired) during a wait."""


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering it with the
    resource tracker.  The creator owns the unlink; a second registration
    (tracker processes are shared across fork) would make the tracker
    unlink the segment twice and log spurious KeyErrors at shutdown.
    Python < 3.13 has no ``track=False``, so registration is suppressed for
    the duration of the attach instead."""
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmRing:
    """Fixed-slot SPSC byte ring in one shared-memory segment.

    Exactly one process calls :meth:`send` and exactly one calls
    :meth:`recv`; both walk the slots in the same circular order, so the
    per-slot state byte is the only synchronisation needed.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        slots: int,
        slot_size: int,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._buffer = segment.buf
        self.slots = slots
        self.slot_size = slot_size
        self._payload_size = slot_size - _SLOT_HEADER.size
        self._owner = owner
        self._write_slot = 0
        self._read_slot = 0
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, slots: int = DEFAULT_SLOTS, slot_size: int = DEFAULT_SLOT_SIZE
    ) -> "ShmRing":
        if slots < 2:
            raise ValueError(f"a ring needs at least 2 slots, got {slots}")
        if slot_size <= _SLOT_HEADER.size:
            raise ValueError(f"slot_size must exceed {_SLOT_HEADER.size}, got {slot_size}")
        size = _RING_HEADER.size + slots * slot_size
        segment = shared_memory.SharedMemory(create=True, size=size)
        _RING_HEADER.pack_into(
            segment.buf, 0, _RING_MAGIC, _RING_VERSION, 0, slots, slot_size
        )
        # Slot states start as FREE (fresh segments are zero-filled).
        return cls(segment, slots, slot_size, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        segment = _attach(name)
        magic, version, _, slots, slot_size = _RING_HEADER.unpack_from(segment.buf, 0)
        if magic != _RING_MAGIC:
            raise RingError(f"segment {name!r} is not a repro ring")
        if version != _RING_VERSION:
            raise RingError(f"ring {name!r} has unsupported version {version}")
        return cls(segment, slots, slot_size, owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity(self) -> int:
        """Largest payload a single message can carry."""
        return self.slots * self._payload_size

    # ------------------------------------------------------------------
    def _slot_offset(self, slot: int) -> int:
        return _RING_HEADER.size + slot * self.slot_size

    def _wait_state(
        self,
        slot: int,
        wanted: int,
        timeout: Optional[float],
        should_abort: Optional[Callable[[], bool]],
        poll: bool,
    ) -> bool:
        """Spin until ``slot`` reaches ``wanted`` state.  Returns False on a
        ``poll`` (non-blocking) miss; raises on timeout/abort otherwise."""
        buffer = self._buffer
        offset = self._slot_offset(slot)
        if buffer[offset] == wanted:
            return True
        if poll:
            return False
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = _SPIN_MIN
        while True:
            time.sleep(delay)
            if buffer[offset] == wanted:
                return True
            if should_abort is not None and should_abort():
                raise RingClosed("ring peer vanished while waiting")
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(
                    f"slot {slot} did not become "
                    f"{'free' if wanted == _FREE else 'full'} within {timeout}s"
                )
            delay = min(delay * 2, _SPIN_MAX)

    # ------------------------------------------------------------------
    def send(
        self,
        payload: bytes,
        timeout: Optional[float] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Write one message, spanning as many slots as needed.

        Blocks (backpressure) while the consumer still owns the slots;
        ``timeout`` bounds the wait per slot and ``should_abort`` is polled
        during it so a dead consumer cannot hang the producer forever.
        """
        if self._closed:
            raise RingClosed("ring is closed")
        view = memoryview(payload)
        total = len(view)
        if total > self.capacity:
            raise RingMessageTooLarge(
                f"message of {total} bytes exceeds ring capacity {self.capacity}"
            )
        buffer = self._buffer
        position = 0
        while True:
            slot = self._write_slot
            offset = self._slot_offset(slot)
            self._wait_state(slot, _FREE, timeout, should_abort, poll=False)
            take = min(self._payload_size, total - position)
            end = position + take
            more = _FLAG_MORE if end < total else 0
            data_at = offset + _SLOT_HEADER.size
            buffer[data_at : data_at + take] = view[position:end]
            _SLOT_HEADER.pack_into(buffer, offset, _FREE, more, 0, take)
            # Publish last: the consumer reads nothing until the state byte
            # flips, and CPython's memoryview stores are immediate.
            buffer[offset] = _FULL
            self._write_slot = (slot + 1) % self.slots
            position = end
            if not more:
                return

    def recv(
        self,
        timeout: Optional[float] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> bytes:
        """Read one (possibly slot-spanning) message, blocking."""
        message = self._recv(timeout, should_abort, poll=False)
        assert message is not None
        return message

    def try_recv(self) -> Optional[bytes]:
        """Read one message if its first slot is already full, else None."""
        return self._recv(None, None, poll=True)

    def _recv(
        self,
        timeout: Optional[float],
        should_abort: Optional[Callable[[], bool]],
        poll: bool,
    ) -> Optional[bytes]:
        if self._closed:
            raise RingClosed("ring is closed")
        buffer = self._buffer
        parts = []
        first = True
        while True:
            slot = self._read_slot
            offset = self._slot_offset(slot)
            if not self._wait_state(
                slot, _FULL, timeout, should_abort, poll=poll and first
            ):
                return None
            _, flags, _, length = _SLOT_HEADER.unpack_from(buffer, offset)
            data_at = offset + _SLOT_HEADER.size
            parts.append(bytes(buffer[data_at : data_at + length]))
            buffer[offset] = _FREE
            self._read_slot = (slot + 1) % self.slots
            first = False
            if not flags & _FLAG_MORE:
                break
        return parts[0] if len(parts) == 1 else b"".join(parts)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of slots currently FULL (a racy, lock-free estimate).

        Read by the observability plane's ring-occupancy gauge; the scan
        takes no part in the send/recv handshake, so a concurrent producer
        or consumer can make the count off by the messages in flight —
        exactly the precision a load gauge needs, and no more.
        """
        if self._closed:
            return 0
        buffer = self._buffer
        return sum(
            1
            for slot in range(self.slots)
            if buffer[self._slot_offset(slot)] == _FULL
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the segment (both sides); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._buffer = None
        try:
            self._segment.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side only); idempotent."""
        self.close()
        if not self._owner:
            return
        self._owner = False
        try:
            self._segment.unlink()
        except Exception:  # pragma: no cover - already gone
            pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.unlink() if self._owner else self.close()
        except Exception:
            pass
