"""Merging per-shard results, statistics, and knowledge into one view.

Each subscription lives on exactly one shard, so per-subscription records
merge by disjoint union.  Cluster-wide *distributional* statistics are the
subtle part: a latency percentile of the cluster is **not** the average of
the shards' percentiles (a shard with 10 slow slides and one with 10 000
fast ones would average to nonsense).  The workers therefore ship their
bounded per-slide latency samples, and :func:`merged_latency_stats`
computes nearest-rank percentiles over the *combined* sample, weighting
each sample by the number of slides it represents (collectors decimate
long histories, so raw sample counts do not reflect slide counts).

:class:`AggregatedKnowledge` is the control plane's cluster view: one
controller runs per shard (each sees only its own engine), and this class
folds their knowledge reports — adaptation events, shedding accounts,
per-subscription sample counts — into a single audit surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.quantiles import weighted_nearest_rank, weighted_nearest_ranks


def merge_disjoint(maps: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Union of per-shard name-keyed mappings (names are cluster-unique)."""
    merged: Dict[str, object] = {}
    for mapping in maps:
        if not mapping:
            continue
        overlap = merged.keys() & mapping.keys()
        if overlap:
            raise ValueError(
                f"subscription names appear on several shards: {sorted(overlap)}"
            )
        merged.update(mapping)
    return merged


def weighted_percentile(
    samples: Sequence[Tuple[float, float]], fraction: float
) -> float:
    """Nearest-rank percentile of ``(value, weight)`` samples.

    The value at the smallest cumulative-weight position covering
    ``fraction`` of the total weight; matches
    :func:`repro.core.metrics.percentile` when all weights are equal.
    Alias for :func:`repro.obs.quantiles.weighted_nearest_rank`, the
    library's one weighted-percentile implementation.
    """
    return weighted_nearest_rank(samples, fraction)


def weighted_percentiles(
    samples: Sequence[Tuple[float, float]], fractions: Sequence[float]
) -> List[float]:
    """Several weighted percentiles from one sort of the sample."""
    return weighted_nearest_ranks(samples, fractions)


def merged_latency_stats(
    telemetry_maps: Sequence[Dict[str, Dict[str, object]]],
) -> Dict[str, float]:
    """Cluster-wide latency distribution from per-shard telemetry.

    Percentiles are computed over the union of the shards' retained
    latency samples, with each sample weighted by how many slides it
    represents (``slides / len(samples)`` of its subscription): the
    collectors decimate long-running subscriptions' samples, so an
    unweighted union would hand a quiet query the same influence as one
    that processed a thousand times more slides.  Totals and maxima are
    exact sums/maxima of the per-subscription aggregates.

    Emits exactly :data:`repro.engine.subscription.STATS_KEYS`, the one
    stats schema shared with :meth:`repro.engine.Subscription.stats`:
    candidate/memory averages are slide-weighted means of the
    per-subscription averages, maxima are maxima.
    """
    samples: List[Tuple[float, float]] = []
    slides = 0
    delivered = 0
    latency_max = 0.0
    candidate_total = 0.0
    candidate_max = 0.0
    memory_kb_total = 0.0
    for telemetry in telemetry_maps:
        for record in telemetry.values():
            stats = record["stats"]
            latencies = record["latencies"]
            if latencies:
                weight = float(stats["slides"]) / len(latencies)
                samples.extend((value, weight) for value in latencies)
            sub_slides = int(stats["slides"])
            slides += sub_slides
            delivered += int(stats["results_delivered"])
            latency_max = max(latency_max, float(stats["max_latency"]))
            candidate_total += float(stats.get("average_candidates", 0.0)) * sub_slides
            candidate_max = max(candidate_max, float(stats.get("candidate_max", 0.0)))
            memory_kb_total += float(stats.get("average_memory_kb", 0.0)) * sub_slides
    merged: Dict[str, float] = {
        "slides": float(slides),
        "results_delivered": float(delivered),
        "average_candidates": candidate_total / slides if slides else 0.0,
        "candidate_max": candidate_max,
        "average_memory_kb": memory_kb_total / slides if slides else 0.0,
        "max_latency": latency_max,
    }
    percentiles = (
        weighted_percentiles(samples, (0.5, 0.95, 0.99)) if samples else [0.0] * 3
    )
    merged["p50_latency"], merged["p95_latency"], merged["p99_latency"] = percentiles
    merged["median_latency"] = merged["p50_latency"]
    merged["latency_samples"] = float(len(samples))
    return merged


class AggregatedKnowledge:
    """Read-only cluster view over the per-shard controllers' knowledge.

    Built from the ``controller_report`` payloads of every shard that has
    a controller attached; shards without one contribute nothing.
    """

    def __init__(self, reports: Sequence[Optional[Dict[str, object]]]) -> None:
        self._reports = [report for report in reports if report is not None]

    @property
    def shard_count(self) -> int:
        """Number of shards that reported a controller."""
        return len(self._reports)

    def events(self) -> List[Dict[str, object]]:
        """Every shard's adaptation events, tagged with their shard and
        ordered by slide index (ties: shard order) — one audit log."""
        merged: List[Dict[str, object]] = []
        for report in self._reports:
            for event in report["events"]:
                tagged = dict(event)
                tagged["shard"] = report["shard"]
                merged.append(tagged)
        merged.sort(key=lambda event: (event["slide_index"], event["shard"]))
        return merged

    def applied_events(self) -> List[Dict[str, object]]:
        return [event for event in self.events() if event["applied"]]

    @property
    def events_total(self) -> int:
        """Exact count of logged events across shards (the per-shard logs
        are bounded, this counter is not)."""
        return sum(report["knowledge"]["events_total"] for report in self._reports)

    def shedding(self) -> Dict[str, object]:
        """Combined load-shedding accuracy account across shards."""
        admitted = sum(report["accuracy"]["admitted"] for report in self._reports)
        shed = sum(report["accuracy"]["shed"] for report in self._reports)
        engagements = sum(
            report["accuracy"]["engagements"] for report in self._reports
        )
        total = admitted + shed
        return {
            "admitted": admitted,
            "shed": shed,
            "shed_fraction": shed / total if total else 0.0,
            "engagements": engagements,
            "exact": shed == 0,
        }

    def subscriptions(self) -> Dict[str, Dict[str, object]]:
        """Per-subscription monitor summaries, tagged with their shard."""
        merged: Dict[str, Dict[str, object]] = {}
        for report in self._reports:
            for name, summary in report["knowledge"]["subscriptions"].items():
                tagged = dict(summary)
                tagged["shard"] = report["shard"]
                merged[name] = tagged
        return merged

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (the CLI's ``--json`` output)."""
        return {
            "shards_with_controllers": self.shard_count,
            "subscriptions": self.subscriptions(),
            "events": self.events(),
            "events_total": self.events_total,
            "shedding": self.shedding(),
        }
