"""The shard router: process handles, transports, fan-out, and barriers.

:class:`ShardRouter` owns the worker processes and two paths into each:

* the **data path** — asynchronous ``push`` batches, fanned out to every
  interested shard without waiting so all workers crunch in parallel.  The
  chunk is packed once into :func:`~repro.core.columnar.encode_chunk`
  bytes and then either enqueued on the worker's ``mp.Queue`` (the
  ``queue`` transport) or written into its shared-memory ring (the ``shm``
  transport, :mod:`repro.cluster.shm`) — the latter skips the queue's
  feeder-thread pickle and pipe copy entirely.
* the **control path** — synchronous request/reply over ``mp.Queue`` in
  both transports.  Because one worker processes its commands strictly in
  order, a synchronous request also acts as a barrier for everything
  queued to that shard before it; :meth:`barrier` exploits this to drain
  the whole cluster before operations that need a consistent cut (stats,
  flush, rebalance, close).  Under the shm transport the data no longer
  shares the queue's FIFO, so every control message carries a *fence* —
  the count of data chunks sent so far — and the worker drains its ring up
  to that fence before executing the command, restoring the exact
  data/control ordering of the queue transport.

Bounded command queues give natural backpressure: a producer that outruns
the workers blocks on ``put`` (with exponential backoff) instead of
buffering the stream in memory, and surfaces a typed
:class:`ShardBackpressureError` naming the shard when the stall exceeds
the configured budget.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import time
from collections import deque
from queue import Empty, Full
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.columnar import encode_chunk
from ..core.exceptions import ReproError
from ..core.state import dumps
from ..obs.registry import LATENCY_BUCKETS, get_registry
from ..obs.tracing import get_tracer
from .shm import RingTimeout, ShmRing
from .worker import shard_worker_main

#: Command-queue depth per worker.  Small on purpose: each entry can carry
#: a whole slide-aligned chunk, so even a depth of 8 keeps every worker
#: busy while bounding the in-flight stream to O(depth * chunk).
DEFAULT_QUEUE_DEPTH = 8

#: Upper bound of the poll interval used while waiting on replies and on
#: backpressured puts; both waits start small and back off exponentially
#: to this cap, so failures surface fast without busy-spinning.
REPLY_POLL_SECONDS = 1.0
_POLL_MIN_SECONDS = 0.005

#: How long a producer may stay blocked on one shard's full command queue
#: (or full ring) before the stall is reported as backpressure.
DEFAULT_BACKPRESSURE_TIMEOUT = 30.0

#: The data-path transports :class:`ShardRouter` can run on.
TRANSPORTS = ("queue", "shm")


class ShardError(ReproError):
    """A shard worker failed or died; carries the remote traceback."""


class ShardBackpressureError(ShardError):
    """A shard's inbound path stayed full past the backpressure budget.

    Distinct from a generic :class:`ShardError` so callers can react to
    overload (shed load, widen the cluster, slow the producer) differently
    from worker death; ``shard_id`` names the congested shard.
    """

    def __init__(self, message: str, shard_id: int) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class _TransportCounters:
    """Router-side per-shard accounting of the data path."""

    __slots__ = ("encode_seconds", "send_seconds", "bytes", "batches", "objects")

    def __init__(self) -> None:
        self.encode_seconds = 0.0
        self.send_seconds = 0.0
        self.bytes = 0
        self.batches = 0
        self.objects = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "encode_seconds": self.encode_seconds,
            "send_seconds": self.send_seconds,
            "bytes": self.bytes,
            "batches": self.batches,
            "objects": self.objects,
        }


class _ShardHandle:
    """One worker process plus its queues, ring, and liveness state."""

    __slots__ = (
        "shard_id",
        "process",
        "commands",
        "replies",
        "ring",
        "doorbell",
        "sent_chunks",
        "counters",
        "bp_waits",
        "durability_dir",
        "retained",
    )

    def __init__(
        self,
        shard_id: int,
        ctx,
        queue_depth: int,
        ring: Optional[ShmRing],
        durability_dir: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self.commands = ctx.Queue(maxsize=queue_depth)
        self.replies = ctx.Queue()
        self.ring = ring
        # The ring itself is pure shared memory with no wakeup primitive;
        # the doorbell (a futex-backed semaphore, released once per send)
        # is what lets an idle worker block instead of sleep-polling.
        self.doorbell = ctx.Semaphore(0) if ring is not None else None
        self.sent_chunks = 0
        self.counters = _TransportCounters()
        self.bp_waits = 0
        self.durability_dir = durability_dir
        # Resurrection buffer: the most recent ``(seq, payload)`` sends.
        # A crashed worker has journaled every chunk except those still in
        # flight, and in-flight is bounded by queue depth (queue transport)
        # or ring slots (shm: every chunk occupies at least one slot) —
        # so this deque provably covers the journal -> send-count gap.
        if durability_dir is not None:
            in_flight = ring.slots if ring is not None else queue_depth
            self.retained: Optional[deque] = deque(maxlen=in_flight + queue_depth + 4)
        else:
            self.retained = None
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(shard_id, self.commands, self.replies),
            kwargs={
                "ring_name": ring.name if ring is not None else None,
                "doorbell": self.doorbell,
                "durability_dir": durability_dir,
            },
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )

    def ding(self) -> None:
        """Wake the worker: one release per ring message or fenced
        control message (a pure hint — spurious wakeups are harmless)."""
        if self.doorbell is not None:
            self.doorbell.release()


class ShardRouter:
    """Owns the worker pool; routes commands and collects replies."""

    def __init__(
        self,
        shard_count: int,
        *,
        start_method: Optional[str] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        reply_timeout: Optional[float] = None,
        transport: str = "queue",
        backpressure_timeout: Optional[float] = DEFAULT_BACKPRESSURE_TIMEOUT,
        ring_slots: Optional[int] = None,
        ring_slot_size: Optional[int] = None,
        durability_root: Optional[str] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        # ``fork`` starts workers in milliseconds and is the Linux default;
        # ``spawn`` works too (the worker entry point is importable) and is
        # the fallback where fork is unavailable.
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self.reply_timeout = reply_timeout
        self.transport = transport
        self.backpressure_timeout = backpressure_timeout
        self.queue_depth = queue_depth
        self.durability_root = durability_root
        self._ring_slots = ring_slots
        self._ring_slot_size = ring_slot_size
        self._shards: List[_ShardHandle] = [
            self._build_handle(shard_id) for shard_id in range(shard_count)
        ]
        for shard in self._shards:
            shard.process.start()
        self._stopped = False
        # Router-process observability: the fan-out stages as histograms,
        # and a pull-time collector exporting the per-shard transport
        # counters and ring occupancy (already maintained — zero hot-path
        # cost).  Worker-process stages live in each worker's registry.
        registry = get_registry()
        stage_help = "Pipeline stage timings over the slide lifecycle."
        self._obs_encode = registry.histogram(
            "repro_stage_seconds", stage_help, {"stage": "encode"}, LATENCY_BUCKETS
        )
        self._obs_send = registry.histogram(
            "repro_stage_seconds", stage_help, {"stage": "send"}, LATENCY_BUCKETS
        )
        self._tracer = get_tracer()
        self._registry = registry
        registry.add_collector(self._collect)

    def _build_handle(self, shard_id: int) -> _ShardHandle:
        """Construct (but do not start) one worker handle."""
        ring = None
        if self.transport == "shm":
            kwargs = {}
            if self._ring_slots is not None:
                kwargs["slots"] = self._ring_slots
            if self._ring_slot_size is not None:
                kwargs["slot_size"] = self._ring_slot_size
            ring = ShmRing.create(**kwargs)
        durability_dir = None
        if self.durability_root is not None:
            durability_dir = os.path.join(self.durability_root, f"shard-{shard_id}")
        return _ShardHandle(shard_id, self._ctx, self.queue_depth, ring, durability_dir)

    def _collect(self, registry) -> None:
        """Pull-time export of the data-path state this router maintains."""
        for shard in self._shards:
            labels = {
                "shard": str(shard.shard_id),
                "transport": self.transport,
                "direction": "send",
            }
            counters = shard.counters
            # Counter values mirror external monotone state, so the
            # collector assigns rather than increments.
            registry.counter(
                "repro_transport_bytes_total", "Encoded chunk bytes moved.", labels
            ).value = float(counters.bytes)
            registry.counter(
                "repro_transport_batches_total", "Chunks moved.", labels
            ).value = float(counters.batches)
            registry.counter(
                "repro_transport_objects_total", "Stream objects moved.", labels
            ).value = float(counters.objects)
            registry.counter(
                "repro_backpressure_waits_total",
                "Producer stalls on a full shard inbound path.",
                {"shard": str(shard.shard_id)},
            ).value = float(shard.bp_waits)
            if shard.ring is not None:
                registry.gauge(
                    "repro_ring_occupancy",
                    "FULL slots in the shard's shm ring.",
                    {"shard": str(shard.shard_id)},
                ).set(shard.ring.occupancy())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shards)

    def shard_ids(self) -> List[int]:
        return [shard.shard_id for shard in self._shards]

    def _handle(self, shard_id: int) -> _ShardHandle:
        try:
            return self._shards[shard_id]
        except IndexError:
            raise ValueError(
                f"no shard {shard_id}; cluster has {len(self._shards)} shards"
            ) from None

    def _put(self, shard: _ShardHandle, message: Tuple) -> None:
        """Enqueue one command with backpressure, bounded backoff, *and* a
        liveness check: a worker that died with a full command queue must
        surface as a :class:`ShardError` instead of blocking the producer
        forever, and a healthy-but-stalled queue must surface as
        :class:`ShardBackpressureError` once the budget is spent."""
        deadline = (
            time.monotonic() + self.backpressure_timeout
            if self.backpressure_timeout is not None
            else None
        )
        delay = _POLL_MIN_SECONDS
        waited = False
        while True:
            try:
                shard.commands.put(message, timeout=delay)
                return
            except Full:
                if not waited:
                    waited = True
                    shard.bp_waits += 1
                if not shard.process.is_alive():
                    raise ShardError(
                        f"shard {shard.shard_id} died (exit code "
                        f"{shard.process.exitcode}) with a full command queue"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise ShardBackpressureError(
                        f"shard {shard.shard_id} command queue stayed full for "
                        f"{self.backpressure_timeout}s (backpressure)",
                        shard_id=shard.shard_id,
                    ) from None
                delay = min(delay * 2, REPLY_POLL_SECONDS)

    # ------------------------------------------------------------------
    # Data path (asynchronous)
    # ------------------------------------------------------------------
    def send(self, shard_id: int, message: Tuple) -> None:
        """Enqueue a fire-and-forget command (blocks on backpressure)."""
        self._put_control(self._handle(shard_id), message)

    def push_chunk(self, chunk: Sequence, shard_ids: Sequence[int]) -> None:
        """Fan one slide-aligned chunk out to the given shards.

        The chunk is packed once into columnar wire bytes; each shard then
        receives the same immutable payload over its transport.
        """
        targets = [self._handle(shard_id) for shard_id in shard_ids]
        if not targets:
            return
        started = time.perf_counter()
        payload = encode_chunk(chunk)
        encode_seconds = time.perf_counter() - started
        self._obs_encode.observe(encode_seconds)
        if self._tracer.enabled:
            # Spans correlate by chunk sequence number: the worker stamps
            # its decode/push spans with the same pre-increment counter.
            self._tracer.record(
                "encode",
                targets[0].sent_chunks,
                time.time() - encode_seconds,
                encode_seconds,
                f"bytes={len(payload)}",
            )
        size = len(payload)
        count = len(chunk)
        for shard in targets:
            counters = shard.counters
            counters.encode_seconds += encode_seconds / len(targets)
            counters.bytes += size
            counters.batches += 1
            counters.objects += count
            if shard.retained is not None:
                # Retain *before* sending: a worker that dies mid-send
                # must still find this chunk in the resurrection buffer.
                shard.retained.append((shard.sent_chunks, payload))
            started = time.perf_counter()
            if shard.ring is not None:
                self._ring_send(shard, payload)
            else:
                self._put(shard, ("push", payload))
            send_seconds = time.perf_counter() - started
            counters.send_seconds += send_seconds
            self._obs_send.observe(send_seconds)
            if self._tracer.enabled:
                self._tracer.record(
                    "send",
                    shard.sent_chunks,
                    time.time() - send_seconds,
                    send_seconds,
                    f"shard={shard.shard_id}",
                )
            shard.sent_chunks += 1

    def _ring_send(self, shard: _ShardHandle, payload: bytes) -> None:
        try:
            shard.ring.send(
                payload,
                timeout=self.backpressure_timeout,
                should_abort=lambda: not shard.process.is_alive(),
            )
            shard.ding()
        except RingTimeout:
            shard.bp_waits += 1
            raise ShardBackpressureError(
                f"shard {shard.shard_id} ring stayed full for "
                f"{self.backpressure_timeout}s (backpressure)",
                shard_id=shard.shard_id,
            ) from None
        except Exception as exc:
            if not shard.process.is_alive():
                raise ShardError(
                    f"shard {shard.shard_id} died (exit code "
                    f"{shard.process.exitcode}) while receiving a chunk"
                ) from None
            raise ShardError(
                f"shard {shard.shard_id} ring send failed: {exc}"
            ) from exc

    def transport_stats(self) -> Dict[int, Dict[str, float]]:
        """Router-side data-path counters, keyed by shard id."""
        return {shard.shard_id: shard.counters.as_dict() for shard in self._shards}

    def pressure_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-shard saturation signals for the autoscaler: lifetime
        backpressure-stall count and the ring's FULL-slot fraction (0.0
        on the queue transport)."""
        stats: Dict[int, Dict[str, float]] = {}
        for shard in self._shards:
            occupancy = 0.0
            if shard.ring is not None:
                occupancy = shard.ring.occupancy() / shard.ring.slots
            stats[shard.shard_id] = {
                "bp_waits": float(shard.bp_waits),
                "ring_occupancy": occupancy,
            }
        return stats

    # ------------------------------------------------------------------
    # Control path (synchronous request/reply)
    # ------------------------------------------------------------------
    @staticmethod
    def _checked(message: Tuple) -> Tuple:
        """Validate that a control message pickles *before* enqueueing it.

        ``mp.Queue`` serializes in a background feeder thread: an
        unpicklable payload (a lambda preference, a closure option) would
        otherwise never reach the worker, and the caller would block
        forever waiting for a reply that cannot come.  Failing here turns
        that silent hang into a clear :class:`StateSerializationError`.
        The data path skips this check (chunks travel as already-encoded
        bytes; double-pickling every chunk would dominate the fan-out
        cost)."""
        dumps(message)
        return message

    def _put_control(self, shard: _ShardHandle, message: Tuple) -> None:
        """Send a control message, fenced behind the shard's data stream
        when the data rides a separate ring."""
        if shard.ring is not None:
            message = ("fence", shard.sent_chunks, message)
        self._put(shard, message)
        shard.ding()

    def request(self, shard_id: int, message: Tuple):
        """Send a synchronous command and return its payload.

        Raises :class:`ShardError` when the worker reports a failure or
        dies before replying, and
        :class:`~repro.core.state.StateSerializationError` when the
        message itself cannot cross the process boundary.
        """
        shard = self._handle(shard_id)
        self._put_control(shard, self._checked(message))
        return self._await_reply(shard, message[0])

    def broadcast(self, message: Tuple, shard_ids: Optional[Sequence[int]] = None):
        """Send a synchronous command to several shards; returns the
        payloads in shard order.  The sends all go out before any reply is
        awaited, so the shards execute concurrently.

        Every reply is consumed even when one shard errors — otherwise the
        unconsumed "ok" replies of the healthy shards would desynchronize
        the request/reply pairing of every later command.  The first
        shard's error (in shard order) is raised after the collection
        pass; a dead shard's missing reply cannot stall the drain of the
        others.
        """
        targets = [self._handle(s) for s in (shard_ids if shard_ids is not None else self.shard_ids())]
        message = self._checked(message)
        for shard in targets:
            self._put_control(shard, message)
        payloads = []
        first_error: Optional[ShardError] = None
        for shard in targets:
            try:
                payloads.append(self._await_reply(shard, message[0]))
            except ShardError as exc:
                payloads.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return payloads

    def barrier(self, shard_ids: Optional[Sequence[int]] = None) -> int:
        """Wait until every queued command has been processed; returns the
        total number of objects pushed across the drained shards."""
        return sum(self.broadcast(("sync",), shard_ids))

    def _await_reply(self, shard: _ShardHandle, op: str):
        deadline = (
            time.monotonic() + self.reply_timeout
            if self.reply_timeout is not None
            else None
        )
        # Escalating poll: short waits right after the send (replies to
        # cheap ops arrive in microseconds), backing off to
        # REPLY_POLL_SECONDS between liveness checks of a slow worker.
        poll = _POLL_MIN_SECONDS
        while True:
            try:
                status, payload = shard.replies.get(timeout=poll)
            except Empty:
                if not shard.process.is_alive():
                    raise ShardError(
                        f"shard {shard.shard_id} died (exit code "
                        f"{shard.process.exitcode}) before replying to {op!r}"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise ShardError(
                        f"shard {shard.shard_id} did not reply to {op!r} "
                        f"within {self.reply_timeout}s"
                    ) from None
                poll = min(poll * 2, REPLY_POLL_SECONDS)
                continue
            if status == "err":
                raise ShardError(f"shard {shard.shard_id} {op!r} failed: {payload}")
            return payload

    # ------------------------------------------------------------------
    # Resurrection and elasticity
    # ------------------------------------------------------------------
    def resurrect(self, shard_id: int) -> Dict[str, object]:
        """Restart a dead worker in place from its durability directory.

        The replacement process recovers the shard's journal (checkpoint +
        WAL tail) at boot; the router then re-sends the chunk tail the
        dead worker had *received but not yet journaled* — bounded by the
        transport's in-flight window and therefore always covered by the
        retention buffer.  Fence continuity: the new handle inherits the
        lifetime send count, and the worker resumes its receive count from
        the journal, so fenced control messages keep lining up.  Returns
        the worker's ``wal_status`` payload.
        """
        old = self._handle(shard_id)
        if old.durability_dir is None:
            raise ShardError(
                f"shard {shard_id} has no durability directory; start the "
                "router with durability_root to enable resurrection"
            )
        if old.process.is_alive():
            raise ShardError(
                f"shard {shard_id} is still alive; refusing to resurrect it"
            )
        # Reap the corpse.  Its queues and ring may hold undelivered
        # chunks; every one of them is still in the retention buffer.
        try:
            old.process.join(timeout=1.0)
        except Exception:
            pass
        for queue in (old.commands, old.replies):
            try:
                queue.close()
                queue.cancel_join_thread()
            except Exception:
                pass
        if old.ring is not None:
            old.ring.unlink()
        fresh = self._build_handle(shard_id)
        fresh.sent_chunks = old.sent_chunks
        fresh.counters = old.counters
        fresh.bp_waits = old.bp_waits
        fresh.retained = old.retained
        self._shards[shard_id] = fresh
        fresh.process.start()
        # Unfenced status request — a fence would wait forever on chunks
        # that were never sent to the fresh ring.
        self._put(fresh, ("wal_status",))
        fresh.ding()
        status = self._await_reply(fresh, "wal_status")
        self._resend_tail(fresh, int(status["chunks"] or 0))
        return status

    def _resend_tail(self, shard: _ShardHandle, logged: int) -> None:
        """Re-send every sent chunk the worker's journal does not hold."""
        if logged >= shard.sent_chunks:
            return
        tail = [(seq, payload) for seq, payload in shard.retained if seq >= logged]
        if [seq for seq, _ in tail] != list(range(logged, shard.sent_chunks)):
            raise ShardError(
                f"shard {shard.shard_id} resurrection gap: the journal holds "
                f"{logged} chunks and {shard.sent_chunks} were sent, but the "
                f"retention buffer covers only {[seq for seq, _ in tail]}"
            )
        for _, payload in tail:
            # Raw re-send: these are already counted in ``sent_chunks``
            # and already sit in the retention buffer.
            if shard.ring is not None:
                self._ring_send(shard, payload)
            else:
                self._put(shard, ("push", payload))

    def add_shard(self) -> int:
        """Grow the pool by one worker; returns the new shard id."""
        shard_id = len(self._shards)
        if self.durability_root is not None:
            # A previously retired shard of the same id must not leave a
            # stale journal for the newcomer to "recover".
            shutil.rmtree(
                os.path.join(self.durability_root, f"shard-{shard_id}"),
                ignore_errors=True,
            )
        fresh = self._build_handle(shard_id)
        self._shards.append(fresh)
        fresh.process.start()
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        """Retire the highest-numbered worker (ids stay dense).

        The caller is responsible for having drained the shard's
        subscriptions off it first (see the facade's ``retire_shard``).
        """
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        if shard_id != len(self._shards) - 1:
            raise ValueError(
                f"only the highest-numbered shard can be removed; "
                f"got {shard_id}, expected {len(self._shards) - 1}"
            )
        shard = self._shards.pop()
        try:
            shard.commands.put(("stop",), timeout=1.0)
            shard.ding()
        except Exception:
            pass
        shard.process.join(timeout=5.0)
        if shard.process.is_alive():
            shard.process.terminate()
            shard.process.join(timeout=5.0)
        for queue in (shard.commands, shard.replies):
            try:
                queue.close()
                queue.cancel_join_thread()
            except Exception:
                pass
        if shard.ring is not None:
            shard.ring.unlink()
        if shard.durability_dir is not None:
            shutil.rmtree(shard.durability_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop and reap every worker (idempotent, never raises)."""
        if self._stopped:
            return
        self._stopped = True
        registry = getattr(self, "_registry", None)
        if registry is not None:
            registry.remove_collector(self._collect)
        for shard in self._shards:
            try:
                # Bounded: a dead worker with a full queue must not hang
                # shutdown; terminate() below reaps it regardless.
                shard.commands.put(("stop",), timeout=1.0)
                shard.ding()
            except Exception:
                pass
        for shard in self._shards:
            shard.process.join(timeout=join_timeout)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=join_timeout)
        for shard in self._shards:
            for queue in (shard.commands, shard.replies):
                try:
                    queue.close()
                    queue.cancel_join_thread()
                except Exception:
                    pass
            if shard.ring is not None:
                shard.ring.unlink()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.stop(join_timeout=0.5)
        except Exception:
            pass
