"""The shard router: process handles, queues, fan-out, and barriers.

:class:`ShardRouter` owns the worker processes and the two queues of each
(commands in, replies out).  The data path is asynchronous — ``push``
batches are enqueued to every interested shard without waiting, so all
workers crunch in parallel — while the control path is synchronous
request/reply.  Because one worker processes its commands strictly in
order, a synchronous request also acts as a barrier for everything queued
to that shard before it; :meth:`barrier` exploits this to drain the whole
cluster before operations that need a consistent cut (stats, flush,
rebalance, close).

Bounded command queues give natural backpressure: a producer that outruns
the workers blocks on ``put`` instead of buffering the stream in memory.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from queue import Empty, Full
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import ReproError
from ..core.state import dumps
from .worker import shard_worker_main

#: Command-queue depth per worker.  Small on purpose: each entry can carry
#: a whole slide-aligned chunk, so even a depth of 8 keeps every worker
#: busy while bounding the in-flight stream to O(depth * chunk).
DEFAULT_QUEUE_DEPTH = 8

#: How long :meth:`ShardRouter.request` waits between liveness checks of a
#: worker that has not replied yet.
REPLY_POLL_SECONDS = 1.0


class ShardError(ReproError):
    """A shard worker failed or died; carries the remote traceback."""


class _ShardHandle:
    """One worker process plus its queues and liveness state."""

    __slots__ = ("shard_id", "process", "commands", "replies")

    def __init__(self, shard_id: int, ctx, queue_depth: int) -> None:
        self.shard_id = shard_id
        self.commands = ctx.Queue(maxsize=queue_depth)
        self.replies = ctx.Queue()
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(shard_id, self.commands, self.replies),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )


class ShardRouter:
    """Owns the worker pool; routes commands and collects replies."""

    def __init__(
        self,
        shard_count: int,
        *,
        start_method: Optional[str] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        reply_timeout: Optional[float] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be positive, got {queue_depth}")
        # ``fork`` starts workers in milliseconds and is the Linux default;
        # ``spawn`` works too (the worker entry point is importable) and is
        # the fallback where fork is unavailable.
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self.reply_timeout = reply_timeout
        self._shards: List[_ShardHandle] = [
            _ShardHandle(shard_id, self._ctx, queue_depth)
            for shard_id in range(shard_count)
        ]
        for shard in self._shards:
            shard.process.start()
        self._stopped = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shards)

    def shard_ids(self) -> List[int]:
        return [shard.shard_id for shard in self._shards]

    def _handle(self, shard_id: int) -> _ShardHandle:
        try:
            return self._shards[shard_id]
        except IndexError:
            raise ValueError(
                f"no shard {shard_id}; cluster has {len(self._shards)} shards"
            ) from None

    def _put(self, shard: _ShardHandle, message: Tuple) -> None:
        """Enqueue one command with backpressure *and* a liveness check:
        a worker that died with a full command queue must surface as a
        :class:`ShardError` instead of blocking the producer forever."""
        while True:
            try:
                shard.commands.put(message, timeout=REPLY_POLL_SECONDS)
                return
            except Full:
                if not shard.process.is_alive():
                    raise ShardError(
                        f"shard {shard.shard_id} died (exit code "
                        f"{shard.process.exitcode}) with a full command queue"
                    ) from None

    # ------------------------------------------------------------------
    # Data path (asynchronous)
    # ------------------------------------------------------------------
    def send(self, shard_id: int, message: Tuple) -> None:
        """Enqueue a fire-and-forget command (blocks on backpressure)."""
        self._put(self._handle(shard_id), message)

    def push_chunk(self, chunk: Sequence, shard_ids: Sequence[int]) -> None:
        """Fan one slide-aligned chunk out to the given shards."""
        message = ("push", chunk)
        for shard_id in shard_ids:
            self._put(self._handle(shard_id), message)

    # ------------------------------------------------------------------
    # Control path (synchronous request/reply)
    # ------------------------------------------------------------------
    @staticmethod
    def _checked(message: Tuple) -> Tuple:
        """Validate that a control message pickles *before* enqueueing it.

        ``mp.Queue`` serializes in a background feeder thread: an
        unpicklable payload (a lambda preference, a closure option) would
        otherwise never reach the worker, and the caller would block
        forever waiting for a reply that cannot come.  Failing here turns
        that silent hang into a clear :class:`StateSerializationError`.
        The data path skips this check (chunks of plain
        :class:`StreamObject`; double-pickling every chunk would dominate
        the fan-out cost)."""
        dumps(message)
        return message

    def request(self, shard_id: int, message: Tuple):
        """Send a synchronous command and return its payload.

        Raises :class:`ShardError` when the worker reports a failure or
        dies before replying, and
        :class:`~repro.core.state.StateSerializationError` when the
        message itself cannot cross the process boundary.
        """
        shard = self._handle(shard_id)
        self._put(shard, self._checked(message))
        return self._await_reply(shard, message[0])

    def broadcast(self, message: Tuple, shard_ids: Optional[Sequence[int]] = None):
        """Send a synchronous command to several shards; returns the
        payloads in shard order.  The sends all go out before any reply is
        awaited, so the shards execute concurrently.

        Every reply is consumed even when one shard errors — otherwise the
        unconsumed "ok" replies of the healthy shards would desynchronize
        the request/reply pairing of every later command.  The first
        shard's error (in shard order) is raised after the collection
        pass; a dead shard's missing reply cannot stall the drain of the
        others.
        """
        targets = [self._handle(s) for s in (shard_ids if shard_ids is not None else self.shard_ids())]
        message = self._checked(message)
        for shard in targets:
            self._put(shard, message)
        payloads = []
        first_error: Optional[ShardError] = None
        for shard in targets:
            try:
                payloads.append(self._await_reply(shard, message[0]))
            except ShardError as exc:
                payloads.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return payloads

    def barrier(self, shard_ids: Optional[Sequence[int]] = None) -> int:
        """Wait until every queued command has been processed; returns the
        total number of objects pushed across the drained shards."""
        return sum(self.broadcast(("sync",), shard_ids))

    def _await_reply(self, shard: _ShardHandle, op: str):
        deadline = (
            time.monotonic() + self.reply_timeout
            if self.reply_timeout is not None
            else None
        )
        while True:
            try:
                status, payload = shard.replies.get(timeout=REPLY_POLL_SECONDS)
            except Empty:
                if not shard.process.is_alive():
                    raise ShardError(
                        f"shard {shard.shard_id} died (exit code "
                        f"{shard.process.exitcode}) before replying to {op!r}"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise ShardError(
                        f"shard {shard.shard_id} did not reply to {op!r} "
                        f"within {self.reply_timeout}s"
                    ) from None
                continue
            if status == "err":
                raise ShardError(f"shard {shard.shard_id} {op!r} failed: {payload}")
            return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop and reap every worker (idempotent, never raises)."""
        if self._stopped:
            return
        self._stopped = True
        for shard in self._shards:
            try:
                # Bounded: a dead worker with a full queue must not hang
                # shutdown; terminate() below reaps it regardless.
                shard.commands.put(("stop",), timeout=1.0)
            except Exception:
                pass
        for shard in self._shards:
            shard.process.join(timeout=join_timeout)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=join_timeout)
        for shard in self._shards:
            for queue in (shard.commands, shard.replies):
                try:
                    queue.close()
                    queue.cancel_join_thread()
                except Exception:
                    pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.stop(join_timeout=0.5)
        except Exception:
            pass
