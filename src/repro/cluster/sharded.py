"""The sharded execution plane: many engines, many processes, one facade.

:class:`ShardedStreamEngine` looks like a :class:`repro.StreamEngine` but
runs every query on one of N worker processes, each hosting a full
single-process engine.  Python's GIL caps a single engine at one core no
matter how many queries the shared plane dedupes; sharding is the axis
that turns additional cores into throughput::

    engine = ShardedStreamEngine(shards=4)
    for user, (n, k, s) in dashboards.items():
        engine.subscribe(user, QuerySpec(n=n, k=k, s=s), algorithm="SAP")
    engine.push_many(feed)            # fans slide-aligned chunks to all shards
    engine.flush()
    print(engine.aggregate_stats())   # percentiles merged from samples
    engine.close()

Division of labour:

* *placement* (:mod:`repro.cluster.placement`) picks the shard of a new
  subscription — by window-shape hash (keeps ``k_max`` plan sharing
  intact) or least-loaded;
* the *router* (:mod:`repro.cluster.router`) fans ``push_many`` chunks to
  every shard that hosts subscriptions, asynchronously, with bounded
  queues for backpressure;
* the *merge layer* (:mod:`repro.cluster.merge`) combines per-shard
  results, statistics (percentiles merged from raw samples, never
  averaged), and control-plane knowledge;
* *rebalancing* moves a live subscription between shards at a slide
  boundary using the serialization layer (:mod:`repro.core.state`) — the
  same drain-and-replay contract the control plane's rebuilds use, so a
  moved query's answers are byte-identical to an unmoved one's.

Because subscriptions cross a process boundary, ``subscribe`` takes an
*algorithm name* from :mod:`repro.registry` (plus picklable options), not
a live instance, and result callbacks are not supported — consume answers
with ``results()`` / ``drain()`` on the returned handle.  Every query's
preference function and options must be picklable (module-level, not
lambdas).
"""

from __future__ import annotations

import json
import math
import os
import time
import warnings
from typing import Dict, Iterable, List, Optional, Union

from ..core.exceptions import AlgorithmStateError
from ..core.object import StreamObject
from ..core.query import TopKQuery
from ..core.result import TopKResult
from ..core.state import dumps
from ..engine.spec import QuerySpec, resolve_query
from ..obs.exposition import merge_snapshots
from ..obs.registry import get_registry
from ..obs.tracing import Span, get_tracer, spans_from_payload
from .merge import AggregatedKnowledge, merge_disjoint, merged_latency_stats
from .placement import PlacementPolicy, make_placement
from .router import (
    DEFAULT_BACKPRESSURE_TIMEOUT,
    DEFAULT_QUEUE_DEPTH,
    ShardError,
    ShardRouter,
)

#: Requested fan-out chunk size (objects per router dispatch).  The actual
#: chunk is the nearest slide-aligned size (see ``_aligned_chunk``); large
#: chunks amortise queue/pickle overhead, which is the IPC cost driver.
DEFAULT_CHUNK = 4096

#: Ceiling for slide alignment, mirroring the control plane's bound: when
#: the least common multiple of the subscribed slide sizes exceeds this,
#: chunks keep the requested size (rebalances may then have to wait for a
#: coincidental boundary).
MAX_ALIGNED_CHUNK = 32_768


class ShardSubscription:
    """Handle for one query living on some shard of the cluster.

    Mirrors the read side of :class:`repro.engine.Subscription`; all
    methods are synchronous round-trips to the hosting worker.
    """

    def __init__(self, engine: "ShardedStreamEngine", name: str, query: TopKQuery) -> None:
        self.name = name
        self.query = query
        self._engine = engine

    @property
    def shard(self) -> int:
        """The shard currently hosting this query (changes on rebalance)."""
        return self._engine.shard_of(self.name)

    def results(self) -> List[TopKResult]:
        """The retained answers, oldest first (see ``keep_results``)."""
        return self._engine._request_shard(self.name, ("results", self.name, False))

    def drain(self) -> List[TopKResult]:
        """Fetch and discard the retained answers, oldest first."""
        return self._engine._request_shard(self.name, ("results", self.name, True))

    def latest(self) -> Optional[TopKResult]:
        """The most recent answer, or ``None`` before the window fills."""
        return self._engine._request_shard(self.name, ("latest", self.name))

    def stats(self) -> Dict[str, float]:
        """Aggregate performance statistics of this query (one round-trip
        to the hosting shard, not a cluster-wide barrier)."""
        return self._engine._request_shard(self.name, ("stats_one", self.name))

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view of the subscription's state (one round-trip
        to the hosting shard, not a cluster-wide barrier)."""
        return self._engine._request_shard(self.name, ("snapshot_one", self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardSubscription({self.name!r}, shard={self.shard})"


class ShardedStreamEngine:
    """Multi-process execution of continuous top-k queries behind one facade."""

    def __init__(
        self,
        shards: int = 4,
        *,
        placement: Union[str, PlacementPolicy] = "hash-window",
        chunk_size: int = DEFAULT_CHUNK,
        keep_results: bool = True,
        start_method: Optional[str] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        reply_timeout: Optional[float] = None,
        transport: str = "queue",
        backpressure_timeout: Optional[float] = DEFAULT_BACKPRESSURE_TIMEOUT,
        durability_dir: Optional[str] = None,
    ) -> None:
        """``shards`` worker processes are started immediately.

        ``placement`` picks each subscription's shard (``"hash-window"``,
        ``"least-loaded"``, or a :class:`PlacementPolicy` instance);
        ``chunk_size`` is the requested router fan-out granularity;
        ``keep_results`` is the default retention policy of new
        subscriptions; ``start_method``/``queue_depth``/``reply_timeout``
        tune the worker pool (defaults: platform fork, depth 8, wait
        forever).  ``transport`` picks the data path: ``"queue"`` moves
        chunks over each worker's command queue, ``"shm"`` over a
        shared-memory ring (:mod:`repro.cluster.shm`); answers are
        byte-identical either way.  ``backpressure_timeout`` bounds how
        long a push may stall on one congested shard before raising
        :class:`~repro.cluster.router.ShardBackpressureError`.

        ``durability_dir`` makes the cluster crash-recoverable: each
        worker journals into ``<dir>/shard-<id>`` (checkpoints + WAL, see
        :mod:`repro.durability`), a ``cluster.json`` manifest records the
        shard count (on restart the manifest *wins* over the ``shards``
        argument, so a resized cluster comes back at its resized width),
        and the facade rebuilds its name->shard map from the workers'
        recovered subscriptions.  A worker that dies mid-stream can then
        be revived in place with :meth:`resurrect_shard`.
        """
        self._durability_dir = durability_dir
        if durability_dir is not None:
            os.makedirs(durability_dir, exist_ok=True)
            manifest = os.path.join(durability_dir, "cluster.json")
            if os.path.exists(manifest):
                with open(manifest, "r", encoding="utf-8") as fh:
                    recorded = json.load(fh).get("shards")
                if recorded:
                    shards = int(recorded)
        self._router = ShardRouter(
            shards,
            start_method=start_method,
            queue_depth=queue_depth,
            reply_timeout=reply_timeout,
            transport=transport,
            backpressure_timeout=backpressure_timeout,
            durability_root=durability_dir,
        )
        self._placement = make_placement(placement)
        self._chunk_size = chunk_size
        self._default_keep_results = keep_results
        self._handles: Dict[str, ShardSubscription] = {}
        self._shard_of: Dict[str, int] = {}
        self._clusters = None
        self._loads: List[float] = [0.0] * shards
        self._closed = False
        if durability_dir is not None:
            self._write_manifest()
            self._recover_map()

    def _write_manifest(self) -> None:
        """Persist the live shard count (atomically) for the next boot."""
        if self._durability_dir is None:
            return
        path = os.path.join(self._durability_dir, "cluster.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"shards": len(self._router)}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _recover_map(self) -> None:
        """Rebuild handles, placement map, and load accounting from the
        subscriptions the workers recovered out of their journals."""
        for shard_id, manifest in zip(
            self._router.shard_ids(), self._router.broadcast(("manifest",))
        ):
            for name, query in (manifest or {}).items():
                self._handles[name] = ShardSubscription(self, name, query)
                self._shard_of[name] = shard_id
                self._loads[shard_id] += self._placement.load_of(query)

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        name: str,
        spec: Union[QuerySpec, TopKQuery],
        algorithm: str = "SAP",
        *,
        keep_results: Optional[bool] = None,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
        shard: Optional[int] = None,
        **algorithm_options: object,
    ) -> ShardSubscription:
        """Register a continuous query on some shard; return its handle.

        ``algorithm`` must be a registry *name* (the instance is built
        inside the worker process); ``shard`` overrides the placement
        policy.  All other parameters match
        :meth:`repro.engine.EngineCore.subscribe`, minus ``on_result``
        (callbacks cannot cross process boundaries).

        A :class:`QuerySpec` that carries its own execution —
        ``spec.using(...)`` / ``spec.preferring(...)`` — is the unified
        path: the algorithm and options come from the spec (passing them
        separately too is an error), the facade assigns the preference
        cluster centrally, and placement is cluster-affine for preference
        specs exactly as in :meth:`subscribe_preference`.
        """
        self._ensure_open()
        if name in self._handles:
            raise ValueError(f"query {name!r} is already subscribed")
        spec_cluster = None
        if isinstance(spec, QuerySpec) and spec.carries_execution():
            if algorithm != "SAP" or algorithm_options:
                raise ValueError(
                    "the spec already declares its execution (using/"
                    "preferring); drop the algorithm/options arguments"
                )
            algorithm, algorithm_options = spec.execution_plan()
            if algorithm == "clustered":
                if "cluster_id" not in algorithm_options:
                    algorithm_options["cluster_id"] = int(
                        self._cluster_space().assign(algorithm_options["vector"])
                    )
                spec_cluster = algorithm_options["cluster_id"]
        if not isinstance(algorithm, str):
            raise TypeError(
                "the sharded engine takes an algorithm name from "
                "repro.registry (the instance is constructed inside the "
                f"worker process), got {type(algorithm).__name__}"
            )
        query = resolve_query(spec)
        if shard is None:
            if spec_cluster is not None:
                shard = self._placement.place_preference(
                    query, spec_cluster, self._loads
                )
            else:
                shard = self._placement.place(query, self._loads)
        elif not 0 <= shard < len(self._router):
            raise ValueError(
                f"shard {shard} out of range (cluster has {len(self._router)})"
            )
        keep = self._default_keep_results if keep_results is None else keep_results
        self._router.request(
            shard,
            (
                "subscribe",
                name,
                query,
                algorithm,
                algorithm_options,
                keep,
                result_buffer,
                collect_metrics,
            ),
        )
        handle = ShardSubscription(self, name, query)
        self._handles[name] = handle
        self._shard_of[name] = shard
        self._loads[shard] += self._placement.load_of(query)
        return handle

    def subscribe_preference(
        self,
        name: str,
        spec: Union[QuerySpec, TopKQuery],
        vector,
        algorithm: str = "SAP",
        *,
        keep_results: Optional[bool] = None,
        result_buffer: Optional[int] = None,
        collect_metrics: bool = True,
        shard: Optional[int] = None,
        pad_factor: Optional[float] = None,
        **algorithm_options: object,
    ) -> ShardSubscription:
        """Register a linear-preference query on some shard.

        The facade owns the cluster assignment
        (:class:`~repro.core.clustering.ClusterSpace`): the vector is
        clustered *here*, the resulting id travels to the worker inside
        the algorithm options, and placement is **cluster-affine** —
        :meth:`~repro.cluster.placement.PlacementPolicy.place_preference`
        hashes the cluster id so one cluster's members (and therefore its
        shared padded-k plan) never straddle shards.

        .. deprecated::
            Use :meth:`subscribe` with ``spec.preferring(vector)`` — the
            unified entry point accepting one :class:`QuerySpec` that
            carries its own execution.
        """
        warnings.warn(
            "subscribe_preference() is deprecated; use "
            "subscribe(name, spec.preferring(vector)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._ensure_open()
        if not isinstance(algorithm, str):
            raise TypeError(
                "the sharded engine takes an inner algorithm name from "
                f"repro.registry, got {type(algorithm).__name__}"
            )
        if name in self._handles:
            raise ValueError(f"query {name!r} is already subscribed")
        from ..core.clustering import validate_vector

        vector = validate_vector(vector)
        query = resolve_query(spec)
        cluster_id = self._cluster_space().assign(vector)
        if shard is None:
            shard = self._placement.place_preference(query, cluster_id, self._loads)
        elif not 0 <= shard < len(self._router):
            raise ValueError(
                f"shard {shard} out of range (cluster has {len(self._router)})"
            )
        options = dict(algorithm_options)
        options["vector"] = vector
        options["cluster_id"] = cluster_id
        options["inner"] = algorithm
        if pad_factor is not None:
            options["pad_factor"] = float(pad_factor)
        keep = self._default_keep_results if keep_results is None else keep_results
        self._router.request(
            shard,
            (
                "subscribe",
                name,
                query,
                "clustered",
                options,
                keep,
                result_buffer,
                collect_metrics,
            ),
        )
        handle = ShardSubscription(self, name, query)
        self._handles[name] = handle
        self._shard_of[name] = shard
        self._loads[shard] += self._placement.load_of(query)
        return handle

    def update_preference(self, name: str, vector) -> Dict[str, object]:
        """Re-declare one preference subscription's vector mid-stream
        (one round-trip to the hosting shard); returns the member's
        cluster record, including its post-update mode."""
        self._ensure_open()
        return self._router.request(
            self.shard_of(name), ("update_preference", name, tuple(vector))
        )

    def _cluster_space(self):
        if self._clusters is None:
            from ..core.clustering import ClusterSpace

            self._clusters = ClusterSpace()
        return self._clusters

    def unsubscribe(self, name: str) -> None:
        """Close and remove one query from its shard."""
        self._ensure_open()
        shard = self.shard_of(name)
        self._router.request(shard, ("unsubscribe", name))
        self._forget(name, shard)

    def _forget(self, name: str, shard: int) -> None:
        handle = self._handles.pop(name)
        del self._shard_of[name]
        self._loads[shard] -= self._placement.load_of(handle.query)

    def subscription(self, name: str) -> ShardSubscription:
        try:
            return self._handles[name]
        except KeyError:
            raise KeyError(
                f"no subscription named {name!r}; active: {sorted(self._handles)}"
            ) from None

    def subscriptions(self) -> List[str]:
        """Names of every subscription, in registration order."""
        return list(self._handles)

    def shard_of(self, name: str) -> int:
        """The shard currently hosting ``name``."""
        self.subscription(name)
        return self._shard_of[name]

    def describe_shards(self) -> List[Dict[str, object]]:
        """Placement map: per shard, its load score and its queries."""
        by_shard: Dict[int, List[str]] = {s: [] for s in self._router.shard_ids()}
        for name, shard in self._shard_of.items():
            by_shard[shard].append(name)
        return [
            {"shard": shard, "load": round(self._loads[shard], 6), "members": members}
            for shard, members in by_shard.items()
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._handles

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def shards(self) -> int:
        return len(self._router)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, obj: StreamObject) -> Dict[str, List[TopKResult]]:
        """Feed one object to every shard hosting subscriptions.

        Dispatch is asynchronous, so the returned mapping is always empty
        — consume answers with ``results()`` / ``drain()``.  ``push`` costs
        one queue round per shard per object; feed real volume through
        :meth:`push_many`.
        """
        self._ensure_open()
        targets = self._active_shards()
        if not targets:
            raise ValueError("no queries subscribed")
        self._router.push_chunk([obj], targets)
        return {}

    def push_many(
        self, objects: Iterable[StreamObject], *, chunk_size: Optional[int] = None
    ) -> int:
        """Fan an iterable out to the shards in slide-aligned chunks.

        The iterable is consumed lazily; each chunk is enqueued to every
        shard hosting subscriptions and processed by all of them in
        parallel.  Chunk sizes are aligned to the least common multiple of
        the subscribed count-based slide sizes, so — for queries whose
        window size is a multiple of their slide (``n % s == 0``) — every
        chunk boundary is an exact slide boundary, the points where
        :meth:`rebalance` may move queries (see :meth:`slide_alignment`).
        Returns the number of objects dispatched.
        """
        self._ensure_open()
        targets = self._active_shards()
        if not targets:
            raise ValueError("no queries subscribed")
        size = self._aligned_chunk(
            self._chunk_size if chunk_size is None else chunk_size
        )
        tracer = get_tracer()
        count = 0
        batches = 0
        chunk: List[StreamObject] = []
        batch_started = time.time() if tracer.enabled else 0.0
        for obj in objects:
            chunk.append(obj)
            if len(chunk) >= size:
                self._router.push_chunk(chunk, targets)
                count += len(chunk)
                if tracer.enabled:
                    now = time.time()
                    tracer.record(
                        "ingest-batch",
                        batches,
                        batch_started,
                        now - batch_started,
                        f"objects={len(chunk)}",
                    )
                    batch_started = now
                batches += 1
                chunk = []
        if chunk:
            self._router.push_chunk(chunk, targets)
            count += len(chunk)
            if tracer.enabled:
                tracer.record(
                    "ingest-batch",
                    batches,
                    batch_started,
                    time.time() - batch_started,
                    f"objects={len(chunk)}",
                )
        return count

    def flush(self) -> Dict[str, List[TopKResult]]:
        """Drain the cluster, then emit end-of-stream reports of
        time-based windows; returns the merged per-query answers.

        No explicit barrier is needed: each worker drains its queued
        pushes before handling the flush command (FIFO queue ordering).
        """
        self._ensure_open()
        produced = self._router.broadcast(("flush",))
        merged = merge_disjoint(produced)
        return {name: merged[name] for name in self._handles if name in merged}

    def synchronize(self) -> int:
        """Block until every dispatched object has been processed; returns
        the cluster-wide processed-object count."""
        self._ensure_open()
        return self._router.barrier()

    def _active_shards(self) -> List[int]:
        return sorted({shard for shard in self._shard_of.values()})

    def slide_alignment(self) -> int:
        """The cluster's slide-alignment quantum: the least common multiple
        of the subscribed count-based slide sizes (1 when none applies, or
        when the lcm would exceed :data:`MAX_ALIGNED_CHUNK`).

        After pushing a whole multiple of this many objects through
        :meth:`push_many` — at least the largest window size, for windows
        whose size is a multiple of their slide — every count-based
        subscription sits at an exact slide boundary, which is what
        :meth:`rebalance` needs on the source shard.
        """
        lcm = 1
        for handle in self._handles.values():
            query = handle.query
            if query.time_based:
                continue
            lcm = lcm * query.s // math.gcd(lcm, query.s)
            if lcm > MAX_ALIGNED_CHUNK:
                return 1
        return lcm

    def _aligned_chunk(self, requested: int) -> int:
        if requested < 1:
            raise ValueError(f"chunk_size must be positive, got {requested}")
        lcm = self.slide_alignment()
        if lcm <= 1:
            return requested
        if requested <= lcm:
            return lcm
        return (requested // lcm) * lcm

    # ------------------------------------------------------------------
    # Rebalancing (the serialization layer in action)
    # ------------------------------------------------------------------
    def rebalance(self, name: str, to_shard: int) -> ShardSubscription:
        """Move a live subscription to another shard, answers preserved.

        The subscription's state — configuration, window contents, slide
        clock, retained answers, metrics — is captured and removed on the
        source shard (behind any queued pushes, which the worker drains
        first), and restored on the target through the standard
        drain-and-replay path.  Subsequent answers are byte-identical to
        an unmoved run.

        Capture requires the source group to sit at an exact slide
        boundary.  Slide-aligned chunking guarantees that after any
        :meth:`push_many` call whose total is a multiple of
        :meth:`slide_alignment` — *provided* the moved query's window size
        is a multiple of its slide (``n % s == 0``).  A query with
        ``n % s != 0`` reaches boundaries only at offsets ``n + j*s``,
        which chunk alignment cannot hit in general; rebalancing such a
        query raises a :class:`ShardError` naming the boundary rule, and
        the subscription keeps running on its source shard.
        """
        self._ensure_open()
        source = self.shard_of(name)
        if not 0 <= to_shard < len(self._router):
            raise ValueError(
                f"shard {to_shard} out of range (cluster has {len(self._router)})"
            )
        if to_shard == source:
            return self._handles[name]
        state = self._router.request(source, ("capture", name, True))
        # Pre-pickle once: restore_subscription accepts the bytes directly,
        # so the (potentially large) window + retained results are not
        # serialized a second time by the router's transport check.
        payload = dumps(state)
        try:
            self._router.request(to_shard, ("restore", payload))
        except Exception as target_error:
            # Put the subscription back where it was; the capture removed it.
            try:
                self._router.request(source, ("restore", payload))
            except Exception:
                # Both shards refused: the subscription is hosted nowhere,
                # so stop advertising it and surface the cause chain.
                self._forget(name, source)
                raise ShardError(
                    f"rebalance of {name!r} failed on the target shard "
                    f"{to_shard} and the rollback to shard {source} failed "
                    "too; the subscription has been dropped"
                ) from target_error
            raise
        handle = self._handles[name]
        self._loads[source] -= self._placement.load_of(handle.query)
        self._loads[to_shard] += self._placement.load_of(handle.query)
        self._shard_of[name] = to_shard
        return handle

    # ------------------------------------------------------------------
    # Durability and elasticity
    # ------------------------------------------------------------------
    @property
    def durability_dir(self) -> Optional[str]:
        """The cluster's durability root, or ``None`` when not durable."""
        return self._durability_dir

    def durability_status(self) -> List[Dict[str, object]]:
        """Per-shard journal status (chunks logged, objects ingested,
        subscriptions recovered at the last boot); one cluster barrier."""
        self._ensure_open()
        return self._router.broadcast(("wal_status",))

    def resurrect_shard(self, shard_id: int) -> Dict[str, object]:
        """Revive a dead worker in place (durable clusters only).

        The replacement process recovers the shard's checkpoint + WAL
        tail, the router re-sends the received-but-unjournaled chunk
        tail, and the shard continues producing the exact answer stream
        the dead worker would have — see
        :meth:`~repro.cluster.router.ShardRouter.resurrect`.
        """
        self._ensure_open()
        return self._router.resurrect(shard_id)

    def spawn_shard(self) -> int:
        """Grow the cluster by one (initially empty) worker; returns the
        new shard id.  Move load onto it with :meth:`rebalance`."""
        self._ensure_open()
        shard_id = self._router.add_shard()
        self._loads.append(0.0)
        self._write_manifest()
        return shard_id

    def retire_shard(self, shard_id: Optional[int] = None) -> int:
        """Drain and stop the highest-numbered worker; returns its id.

        Every subscription the shard hosts is first rebalanced onto the
        least-loaded remaining shard (which needs the same slide-boundary
        alignment as any :meth:`rebalance`), then the worker is stopped
        and its journal removed.  Ids stay dense, so only the highest
        shard can retire.
        """
        self._ensure_open()
        last = len(self._router) - 1
        if shard_id is None:
            shard_id = last
        if shard_id != last:
            raise ValueError(
                f"only the highest-numbered shard can retire; got {shard_id}, "
                f"expected {last}"
            )
        if len(self._router) == 1:
            raise ValueError("cannot retire the last shard")
        members = [name for name, s in self._shard_of.items() if s == shard_id]
        for name in members:
            target = min(range(shard_id), key=self._loads.__getitem__)
            self.rebalance(name, target)
        self._router.remove_shard(shard_id)
        self._loads.pop()
        self._write_manifest()
        return shard_id

    # ------------------------------------------------------------------
    # Reading answers and state
    # ------------------------------------------------------------------
    def results(self, name: str) -> List[TopKResult]:
        """Retained answers of one query.  Queue ordering drains the
        *hosting shard's* pending pushes first; use :meth:`synchronize`
        for a cluster-wide drain."""
        return self.subscription(name).results()

    def drain_results(self) -> Dict[str, List[TopKResult]]:
        """Fetch-and-discard every subscription's retained answers in one
        cluster-wide broadcast (the multi-process analogue of
        :meth:`repro.engine.core.EngineCore.drain_results`).  Queue
        ordering drains each shard's pending pushes first, so the answers
        cover everything dispatched before this call."""
        self._ensure_open()
        merged = merge_disjoint(self._router.broadcast(("drain",)))
        return {name: merged[name] for name in self._handles if name in merged}

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-subscription statistics, merged across shards."""
        self._ensure_open()
        merged = merge_disjoint(self._router.broadcast(("stats",)))
        return {name: merged[name] for name in self._handles if name in merged}

    def aggregate_stats(self) -> Dict[str, float]:
        """Cluster-wide latency distribution: percentiles computed over
        the union of every subscription's retained samples (never an
        average of per-shard percentiles)."""
        self._ensure_open()
        return merged_latency_stats(self._router.broadcast(("telemetry",)))

    @property
    def transport(self) -> str:
        """The data-path transport of the router (``queue`` or ``shm``)."""
        return self._router.transport

    def transport_stats(self) -> Dict[int, Dict[str, object]]:
        """Per-shard data-path breakdown, keyed by shard id: the router's
        serialize/send counters merged with the worker's deserialize
        counters (one cluster-wide barrier)."""
        self._ensure_open()
        merged: Dict[int, Dict[str, object]] = {}
        router_side = self._router.transport_stats()
        worker_side = self._router.broadcast(("transport_stats",))
        for shard_id, record in zip(self._router.shard_ids(), worker_side):
            entry = dict(router_side.get(shard_id, {}))
            entry.update(record or {})
            merged[shard_id] = entry
        return merged

    # ------------------------------------------------------------------
    # Observability (cluster-aggregated metrics and tracing)
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> List[Dict[str, object]]:
        """One cluster-wide metrics snapshot: this process's registry
        (router fan-out stages, facade instruments) merged with every
        worker's, each worker's series stamped ``shard="<id>"``.  Counter
        and histogram series sum across processes; facade-process series
        stay unlabelled by shard."""
        self._ensure_open()
        snapshots = [get_registry().snapshot(), *self._router.broadcast(("metrics",))]
        extra = [None] + [
            {"shard": str(shard_id)} for shard_id in self._router.shard_ids()
        ]
        return merge_snapshots(snapshots, extra)

    def set_tracing(self, enabled: bool) -> None:
        """Switch pipeline tracing on/off cluster-wide: the facade
        process's tracer (ingest-batch, encode, send spans) and every
        worker's (decode, push, seal, merge, deliver spans)."""
        self._ensure_open()
        tracer = get_tracer()
        if enabled:
            tracer.enable()
        else:
            tracer.disable()
        self._router.broadcast(("set_tracing", bool(enabled)))

    def collect_spans(self) -> List[Span]:
        """Drain every process's recorded spans into one list ordered by
        start time; spans carry their shard id (-1 for the facade), and
        stitch across processes by slide/chunk sequence number."""
        self._ensure_open()
        spans = list(get_tracer().drain())
        for payload in self._router.broadcast(("spans",)):
            spans.extend(spans_from_payload(payload or ()))
        spans.sort(key=lambda span: span.start)
        return spans

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time state of every subscription, keyed by name."""
        self._ensure_open()
        merged = merge_disjoint(self._router.broadcast(("snapshot",)))
        return {name: merged[name] for name in self._handles if name in merged}

    def groups(self) -> List[Dict[str, object]]:
        """Every shard's query groups, tagged with their shard."""
        self._ensure_open()
        described: List[Dict[str, object]] = []
        for shard, groups in zip(self._router.shard_ids(), self._router.broadcast(("groups",))):
            for group in groups:
                tagged = dict(group)
                tagged["shard"] = shard
                described.append(tagged)
        return described

    def _request_shard(self, name: str, message) -> object:
        """Synchronous request to the shard hosting ``name`` (drains that
        shard's queued pushes first, by queue ordering)."""
        self._ensure_open()
        return self._router.request(self.shard_of(name), message)

    # ------------------------------------------------------------------
    # Adaptive control plane (one controller per shard)
    # ------------------------------------------------------------------
    def attach_controllers(self, policy=None) -> None:
        """Attach an :class:`~repro.control.AdaptiveController` with this
        policy to every shard's engine.  Each controller sees only its own
        shard; read the cluster-wide picture with :meth:`knowledge`."""
        self._ensure_open()
        self._router.broadcast(("attach_controller", policy))

    def detach_controllers(self) -> None:
        """Detach every shard's controller (idempotent per shard)."""
        self._ensure_open()
        self._router.broadcast(("detach_controller",))

    def knowledge(self) -> AggregatedKnowledge:
        """Aggregated view over the per-shard controllers' knowledge:
        merged adaptation events, combined shedding account, and
        per-subscription monitor summaries."""
        self._ensure_open()
        return AggregatedKnowledge(self._router.broadcast(("controller_report",)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> Dict[str, List[TopKResult]]:
        """Flush every shard, stop the workers, and return the merged
        final-flush answers.  Closing twice is a no-op.

        Shutdown is best-effort: a shard that already failed (its error
        was observable on every earlier synchronous call) cannot block the
        rest of the cluster from stopping, so its final flush is skipped
        rather than raised here — the worker still closes its engine
        before replying, so a latched failure leaks nothing.  Repeated
        ``close()`` (e.g. an explicit call followed by ``__exit__``, or a
        retry after a worker failure surfaced) stays a safe no-op.
        """
        if self._closed:
            return {}
        self._closed = True
        try:
            produced: Dict[str, List[TopKResult]] = {}
            for shard_id in self._router.shard_ids():
                try:
                    produced.update(self._router.request(shard_id, ("close",)))
                except Exception:
                    # ShardError (latched failure / dead worker) or any
                    # transport problem: shutdown must not raise half-way,
                    # the remaining shards still need their close.
                    continue
            return {name: produced[name] for name in self._handles if name in produced}
        finally:
            self._router.stop()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise AlgorithmStateError("the engine is closed")
