"""Elastic shard scaling: a MAPE-K loop over the cluster itself.

The per-engine control plane (:mod:`repro.control`) adapts *how one
engine executes*; this module adapts *how many engines there are*.
:class:`ShardAutoscaler` wraps a live
:class:`~repro.cluster.sharded.ShardedStreamEngine` and runs the same
four stages over cluster-level signals:

* **Monitor** — per-shard :class:`~repro.control.ShardPressureSample`
  records: backpressure stalls since the last tick, shm-ring occupancy,
  placement-load share, hosted-query count.  When the per-shard
  controllers are attached, their merged
  :class:`~repro.cluster.merge.AggregatedKnowledge` rides along in the
  tick record for the audit log.
* **Analyze** — :class:`~repro.control.ShardPressure` reports at most
  one symptom per tick: ``shard-overload`` (a producer stalled, or a
  ring is nearly full) or ``cluster-underload`` (everything idle and the
  emptiest shard below an even split).
* **Plan** — the policy's rules map symptoms to the two cluster tactics
  (``spawn-shard`` / ``retire-shard``), subject to the ``min_shards`` /
  ``max_shards`` bounds and a tick cooldown so the pool cannot thrash.
* **Execute** — ``spawn-shard`` grows the pool by one worker and moves
  the overloaded shard's heaviest subscriptions onto it with the live
  :meth:`~repro.cluster.sharded.ShardedStreamEngine.rebalance` (state
  captured at a slide boundary, answers preserved); ``retire-shard``
  drains the highest-numbered worker onto the rest and stops it.
* **Knowledge** — every tick's verdict lands in a bounded event log
  (:meth:`events`), applied or not, with the evidence that drove it.

Rebalancing moves a subscription only at an exact slide boundary, so a
tick that lands mid-slide applies the pool change and reports the moves
it could not make; the next tick retries them.  On a durable cluster
(``durability_dir``) every pool change also rewrites the ``cluster.json``
manifest, so a crash right after scaling recovers at the new width.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..control.analyzers import ShardPressure, ShardPressureSample, Symptom
from ..control.policy import Policy, Rule, Tactic
from ..obs.registry import get_registry
from .router import ShardError
from .sharded import ShardedStreamEngine

#: How many tick records the knowledge log retains.
EVENT_LOG_LIMIT = 256


def default_scaling_policy() -> Policy:
    """Spawn on overload, retire on underload — the whole policy."""
    return Policy(
        rules=[
            Rule(when="shard-overload", tactic=Tactic("spawn-shard")),
            Rule(when="cluster-underload", tactic=Tactic("retire-shard")),
        ]
    )


class ShardAutoscaler:
    """Grows and shrinks a sharded engine's worker pool under pressure."""

    def __init__(
        self,
        engine: ShardedStreamEngine,
        *,
        policy: Optional[Policy] = None,
        pressure: Optional[ShardPressure] = None,
        min_shards: int = 1,
        max_shards: Optional[int] = None,
        cooldown_ticks: int = 2,
    ) -> None:
        if min_shards < 1:
            raise ValueError(f"min_shards must be >= 1, got {min_shards}")
        if max_shards is not None and max_shards < min_shards:
            raise ValueError(
                f"max_shards ({max_shards}) must be >= min_shards ({min_shards})"
            )
        if cooldown_ticks < 0:
            raise ValueError(f"cooldown_ticks must be >= 0, got {cooldown_ticks}")
        self.engine = engine
        self.policy = policy if policy is not None else default_scaling_policy()
        self.pressure = pressure if pressure is not None else ShardPressure()
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.cooldown_ticks = cooldown_ticks
        self._events: Deque[Dict[str, object]] = deque(maxlen=EVENT_LOG_LIMIT)
        self._tick = 0
        self._last_applied: Optional[int] = None
        self._last_bp: Dict[int, float] = {}
        registry = get_registry()
        self._obs_ticks = registry.counter(
            "repro_autoscale_ticks_total", "Autoscaler MAPE passes."
        )
        self._obs_actions = registry.counter(
            "repro_autoscale_actions_total",
            "Applied pool changes.",
            {"tactic": "spawn-shard"},
        )
        self._obs_retires = registry.counter(
            "repro_autoscale_actions_total",
            "Applied pool changes.",
            {"tactic": "retire-shard"},
        )
        self._obs_shards = registry.gauge(
            "repro_cluster_shards", "Live worker processes in the cluster."
        )

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def monitor(self) -> List[ShardPressureSample]:
        """One pressure sample per shard (backpressure deltas are
        relative to the previous call)."""
        engine = self.engine
        loads = list(engine._loads)
        total = sum(loads) or 1.0
        members: Dict[int, int] = {s: 0 for s in engine._router.shard_ids()}
        for shard in engine._shard_of.values():
            members[shard] = members.get(shard, 0) + 1
        raw = engine._router.pressure_stats()
        samples: List[ShardPressureSample] = []
        for shard_id in engine._router.shard_ids():
            signals = raw.get(shard_id, {})
            bp_total = float(signals.get("bp_waits", 0.0))
            delta = bp_total - self._last_bp.get(shard_id, 0.0)
            self._last_bp[shard_id] = bp_total
            samples.append(
                ShardPressureSample(
                    shard=shard_id,
                    load_share=loads[shard_id] / total,
                    ring_occupancy=float(signals.get("ring_occupancy", 0.0)),
                    bp_wait_delta=int(delta),
                    subscriptions=members.get(shard_id, 0),
                )
            )
        return samples

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def tick(self) -> Dict[str, object]:
        """One MAPE-K pass; returns (and logs) the tick's record."""
        self._tick += 1
        self._obs_ticks.inc()
        samples = self.monitor()
        symptom = self.pressure.analyze_cluster(samples)
        record: Dict[str, object] = {
            "tick": self._tick,
            "shards": len(samples),
            "symptom": None if symptom is None else symptom.kind,
            "tactic": None,
            "applied": False,
            "detail": None,
        }
        if symptom is not None:
            record["evidence"] = dict(symptom.evidence)
            tactic = self._plan(symptom)
            if tactic is not None:
                record["tactic"] = tactic.kind
                record["applied"], record["detail"] = self._execute(tactic, symptom)
                if record["applied"]:
                    self._last_applied = self._tick
        self._obs_shards.set(self.engine.shards)
        self._events.append(record)
        return record

    def _plan(self, symptom: Symptom) -> Optional[Tactic]:
        if (
            self._last_applied is not None
            and self._tick - self._last_applied <= self.cooldown_ticks
        ):
            return None
        for rule in self.policy.rules_for(symptom.kind):
            tactic = rule.tactic
            if tactic.kind == "spawn-shard":
                if self.max_shards is not None and self.engine.shards >= self.max_shards:
                    continue
                return tactic
            if tactic.kind == "retire-shard":
                if self.engine.shards <= self.min_shards:
                    continue
                return tactic
            # Subscription-level tactics don't apply at cluster scope.
        return None

    def _execute(self, tactic: Tactic, symptom: Symptom):
        if tactic.kind == "spawn-shard":
            return self._spawn(int(symptom.evidence.get("shard", -1)))
        return self._retire()

    def _spawn(self, hot_shard: int):
        engine = self.engine
        new_shard = engine.spawn_shard()
        moved: List[str] = []
        skipped: List[str] = []
        if 0 <= hot_shard < new_shard:
            # Offload the hot shard's heaviest members until its load
            # drops to the new even share; moves need a slide boundary,
            # so any refusal is reported and left for the next tick.
            target_load = sum(engine._loads) / engine.shards
            members = sorted(
                (name for name, s in engine._shard_of.items() if s == hot_shard),
                key=lambda name: -engine._placement.load_of(
                    engine._handles[name].query
                ),
            )
            for name in members:
                if engine._loads[hot_shard] <= target_load:
                    break
                try:
                    engine.rebalance(name, new_shard)
                    moved.append(name)
                except ShardError:
                    skipped.append(name)
        detail = {"new_shard": new_shard, "moved": moved, "skipped": skipped}
        self._obs_actions.inc()
        return True, detail

    def _retire(self):
        engine = self.engine
        try:
            retired = engine.retire_shard()
        except ShardError as exc:
            # A member refused to move (mid-slide); the pool is unchanged
            # or partially drained — either way the next tick retries.
            return False, {"error": str(exc).splitlines()[0]}
        self._obs_retires.inc()
        return True, {"retired_shard": retired}

    # ------------------------------------------------------------------
    # Knowledge
    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, object]]:
        """The bounded audit log of every tick, oldest first."""
        return list(self._events)

    def describe(self) -> Dict[str, object]:
        return {
            "tick": self._tick,
            "shards": self.engine.shards,
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "cooldown_ticks": self.cooldown_ticks,
            "applied": sum(1 for event in self._events if event["applied"]),
            "policy": self.policy.describe(),
        }
