"""Placement policies: which shard a new subscription lands on.

The sharded engine asks its placement policy once per ``subscribe`` call.
Two built-in policies cover the two things worth optimising:

* :class:`HashWindowPlacement` (default) — deterministic hash of the
  query's *window shape* ``(n, s, window type)``.  Queries sharing a shape
  always land on the same shard, so they join one
  :class:`~repro.engine.group.QueryGroup` there and keep the ``k_max``
  shared execution plans of the multi-query plane; sharding never has to
  trade away intra-shape sharing.
* :class:`LeastLoadedPlacement` — the shard currently hosting the fewest
  subscriptions (weighted by slide rate, the per-object cost driver).
  Best when shapes are all distinct and spreading work matters more than
  co-locating shapes.

Policies are pure functions of ``(query, shard loads)`` — they never talk
to the workers — so custom policies are a three-line subclass away.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Dict, Sequence, Type, Union

from ..core.query import TopKQuery


class PlacementPolicy(ABC):
    """Decides the shard of a newly subscribed query."""

    #: Registry name used by :func:`make_placement` and the CLI.
    name: str = "placement"

    @abstractmethod
    def place(self, query: TopKQuery, loads: Sequence[float]) -> int:
        """Return the shard index (``0 <= index < len(loads)``) for
        ``query``.  ``loads`` is the current load score of every shard
        (see :meth:`load_of`), in shard order."""

    def load_of(self, query: TopKQuery) -> float:
        """Load contribution of one subscription, used to maintain the
        ``loads`` vector.  Slides per object (``1/s``) approximates the
        per-object work a query causes; time-based windows are charged a
        flat rate (their slide cadence is data-dependent)."""
        if query.time_based:
            return 1.0
        return 1.0 + 1.0 / query.s

    def place_preference(
        self, query: TopKQuery, cluster_id: int, loads: Sequence[float]
    ) -> int:
        """The shard of a preference-clustered subscription.

        The default — for *every* policy — hashes the cluster id, because
        a cluster's shared plan only exists on shards hosting at least two
        of its members: scattering a cluster across shards silently
        degrades every member to its private plan.  Policies that prefer
        spreading over sharing can override this.
        """
        if not loads:
            raise ValueError("no shards to place on")
        return zlib.crc32(f"cluster:{int(cluster_id)}".encode("ascii")) % len(loads)


class HashWindowPlacement(PlacementPolicy):
    """Deterministic window-shape hashing (preserves k_max plan sharing)."""

    name = "hash-window"

    def place(self, query: TopKQuery, loads: Sequence[float]) -> int:
        if not loads:
            raise ValueError("no shards to place on")
        shape = f"{query.n}:{query.s}:{int(query.time_based)}"
        # crc32, not hash(): stable across processes and interpreter runs,
        # so a restarted cluster reproduces the same placement.
        return zlib.crc32(shape.encode("ascii")) % len(loads)


class LeastLoadedPlacement(PlacementPolicy):
    """The shard with the smallest current load (ties: lowest index)."""

    name = "least-loaded"

    def place(self, query: TopKQuery, loads: Sequence[float]) -> int:
        if not loads:
            raise ValueError("no shards to place on")
        return min(range(len(loads)), key=lambda shard: (loads[shard], shard))


class ClusterAffinePlacement(PlacementPolicy):
    """Cluster-id hashing for preference queries, window hashing otherwise.

    The explicit policy for preference-heavy workloads: every member of a
    preference cluster lands on one shard (so the cluster's padded-k
    shared plan stays whole), and plain subscriptions keep the window-
    shape affinity of :class:`HashWindowPlacement`.  ``place_preference``
    is inherited — the base class already hashes the cluster id — so this
    class mostly *names* the behaviour for the CLI and the serve config.
    """

    name = "hash-cluster"

    def place(self, query: TopKQuery, loads: Sequence[float]) -> int:
        return HashWindowPlacement().place(query, loads)


#: Built-in policies, keyed by the names the CLI exposes.
PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    HashWindowPlacement.name: HashWindowPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    ClusterAffinePlacement.name: ClusterAffinePlacement,
}


def make_placement(policy: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """Resolve a policy name (or pass a ready instance through)."""
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return PLACEMENT_POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {policy!r}; "
            f"known: {sorted(PLACEMENT_POLICIES)}"
        ) from None
