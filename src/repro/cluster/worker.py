"""The shard worker: one :class:`StreamEngine` behind a command queue.

Each worker is a separate OS process (its own interpreter, its own GIL)
hosting a full single-process engine — query groups, ``k_max`` shared
plans, and optionally an adaptive controller all work inside a shard
exactly as they do locally.  The worker loop is deliberately dumb: it
pops ``(opcode, ...)`` tuples off its command queue, applies them to the
engine, and pushes ``("ok", payload)`` / ``("err", message)`` tuples onto
its reply queue for synchronous opcodes.

``push`` is the one asynchronous opcode: the router streams pre-chunked,
slide-aligned object batches without waiting for replies (that is where
the parallelism comes from), and any failure raised while processing a
batch is latched and surfaced at the next synchronous opcode, so errors
cannot disappear just because nobody was waiting.
"""

from __future__ import annotations

import time
import traceback
from queue import Empty
from typing import Dict, Optional

from ..control import AdaptiveController
from ..core.columnar import decode_chunk
from ..engine import StreamEngine
from ..obs.registry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from ..obs.tracing import Tracer, set_tracer, span_payload

#: Opcodes that reply on the worker's reply queue.  ``push`` and ``stop``
#: are fire-and-forget; everything else is synchronous.
SYNC_OPS = frozenset(
    {
        "subscribe",
        "update_preference",
        "unsubscribe",
        "flush",
        "sync",
        "results",
        "drain",
        "latest",
        "stats",
        "stats_one",
        "snapshot_one",
        "telemetry",
        "transport_stats",
        "metrics",
        "spans",
        "set_tracing",
        "snapshot",
        "groups",
        "capture",
        "restore",
        "attach_controller",
        "detach_controller",
        "controller_report",
        "wal_status",
        "manifest",
        "close",
    }
)

#: Idle wait of the shm-transport worker loop.  The router rings the
#: doorbell after every ring message and fenced control message, so this
#: bound is only the re-check cadence for paths that bypass the doorbell
#: (a racing shutdown, a peer that died without ringing).
_IDLE_WAIT = 0.05

#: How long a fence may wait on ring data the router claims to have sent.
_FENCE_TIMEOUT = 60.0


def shard_worker_main(
    shard_id: int,
    commands,
    replies,
    ring_name: Optional[str] = None,
    doorbell=None,
    durability_dir: Optional[str] = None,
) -> None:
    """Entry point of a worker process (module-level so every
    multiprocessing start method can import it).  ``ring_name`` attaches
    the shared-memory data ring of the shm transport; without it the data
    path arrives on ``commands`` like every control message.  ``doorbell``
    is the router's wakeup semaphore for the ring: released once per sent
    message, acquired here as a hint (never a count) of pending work.

    With a ``durability_dir`` the worker journals every received chunk
    and subscription op into a :class:`repro.durability.DurabilityManager`
    and recovers any prior state from the directory at boot — the
    resurrection path of :meth:`~repro.cluster.router.ShardRouter`
    restarts a SIGKILL'd worker this way, then re-sends the chunk tail
    the dead process had received but not yet logged."""
    # This process's tracer carries the shard id on every span; installed
    # before the engine exists so subscriptions and groups cache the right
    # one.  The facade's "set_tracing" broadcast flips it on.
    tracer = Tracer(shard=shard_id)
    set_tracer(tracer)
    # A fresh registry, not the inherited one: under the fork start method
    # the parent's families (and their values at fork time) would otherwise
    # leak into this worker's snapshot and double-count on merge.
    registry = MetricsRegistry(enabled=get_registry().enabled)
    set_registry(registry)
    stage_help = "Pipeline stage timings over the slide lifecycle."
    obs_decode = registry.histogram(
        "repro_stage_seconds", stage_help, {"stage": "decode"}, LATENCY_BUCKETS
    )
    obs_push = registry.histogram(
        "repro_stage_seconds", stage_help, {"stage": "push"}, LATENCY_BUCKETS
    )

    engine = StreamEngine(keep_results=True, return_results=True)
    controller: Optional[AdaptiveController] = None
    pushed = 0
    failure: Optional[str] = None

    durability = None
    recovery = None
    if durability_dir is not None:
        from ..durability import DurabilityManager

        # The worker logs each chunk's wire payload on receipt (before
        # decoding), so the engine hook must not re-encode and re-log it.
        durability = DurabilityManager(durability_dir, logs_engine_chunks=False)
        recovery = durability.recover(engine)
        engine.attach_durability(durability)
        pushed = recovery.ingested_total

    ring = None
    if ring_name is not None:
        from .shm import ShmRing

        ring = ShmRing.attach(ring_name)
    # Lifetime chunk-receive count.  Resumes from the journal so the
    # router's fences (which carry its lifetime *send* count) stay
    # comparable across a resurrection.
    consumed_chunks = durability.chunks_logged if durability is not None else 0
    decode_stats = {
        "decode_seconds": 0.0,
        "decode_bytes": 0,
        "decoded_batches": 0,
        "decoded_objects": 0,
    }

    transport_name = "shm" if ring is not None else "queue"

    def collect_transport(reg) -> None:
        """Pull-time export of the decode-side transport counters."""
        labels = {"transport": transport_name, "direction": "recv"}
        reg.counter(
            "repro_transport_bytes_total", "Encoded chunk bytes moved.", labels
        ).value = float(decode_stats["decode_bytes"])
        reg.counter(
            "repro_transport_batches_total", "Chunks moved.", labels
        ).value = float(decode_stats["decoded_batches"])
        reg.counter(
            "repro_transport_objects_total", "Stream objects moved.", labels
        ).value = float(decode_stats["decoded_objects"])

    registry.add_collector(collect_transport)

    def telemetry() -> Dict[str, Dict[str, object]]:
        """Per-subscription statistics plus the raw bounded latency sample,
        so the facade can merge percentiles from samples instead of
        averaging per-shard percentiles (which would be wrong)."""
        record: Dict[str, Dict[str, object]] = {}
        for name in engine.subscriptions():
            subscription = engine.subscription(name)
            record[name] = {
                "stats": subscription.stats(),
                "latencies": list(subscription.metrics.latencies),
                "shard": shard_id,
            }
        return record

    def handle_push(payload) -> None:
        """Apply one data chunk — encoded wire bytes (both transports) or
        a legacy list of objects — latching any failure for the next
        synchronous opcode."""
        nonlocal pushed, failure
        if failure is not None:
            return  # the shard is broken; drop data, keep the error
        try:
            if durability is not None:
                # Journal the wire payload ahead of application; the
                # replayed journal is then the exact received sequence.
                if isinstance(payload, (bytes, bytearray, memoryview)):
                    durability.log_encoded(bytes(payload))
                else:
                    durability.log_objects(payload)
            if isinstance(payload, (bytes, bytearray, memoryview)):
                # Pre-increment sequence number: matches the router's
                # ``sent_chunks`` stamp on its encode/send spans, so the
                # trace stitches across the process boundary.
                seq = decode_stats["decoded_batches"]
                started = time.perf_counter()
                objects, block = decode_chunk(payload, materialize=False)
                decode_seconds = time.perf_counter() - started
                obs_decode.observe(decode_seconds)
                if tracer.enabled:
                    tracer.record(
                        "decode",
                        seq,
                        time.time() - decode_seconds,
                        decode_seconds,
                        f"bytes={len(payload)}",
                    )
                count = len(block) if block is not None else len(objects)
                decode_stats["decode_seconds"] += decode_seconds
                decode_stats["decode_bytes"] += len(payload)
                decode_stats["decoded_batches"] += 1
                decode_stats["decoded_objects"] += count
                # The router pre-chunks to slide-aligned sizes; a columnar
                # chunk moves through each query group in block form.
                started = time.perf_counter()
                if block is not None:
                    pushed += engine.push_block(block)
                else:
                    pushed += engine.push_many(objects, chunk_size=max(1, len(objects)))
                push_seconds = time.perf_counter() - started
                obs_push.observe(push_seconds)
                if tracer.enabled:
                    tracer.record(
                        "push",
                        seq,
                        time.time() - push_seconds,
                        push_seconds,
                        f"objects={count}",
                    )
            else:
                pushed += engine.push_many(payload, chunk_size=max(1, len(payload)))
        except BaseException:
            failure = traceback.format_exc()

    def drain_ring_to(target: int) -> None:
        """Consume ring chunks until ``target`` have been seen (the fence
        of a control message: the router sent them all before the fence,
        so they are guaranteed to arrive)."""
        nonlocal consumed_chunks, failure
        while consumed_chunks < target:
            try:
                payload = ring.recv(timeout=_FENCE_TIMEOUT)
            except BaseException:
                if failure is None:
                    failure = traceback.format_exc()
                return
            consumed_chunks += 1
            handle_push(payload)

    rung = False  # a doorbell token was consumed but its message not yet seen
    while True:
        if ring is not None:
            # Consume stale doorbell tokens *before* draining, so a token
            # can never be eaten for a message that is then left behind:
            # any message sent after this drain has its own fresh token.
            if doorbell is not None:
                while doorbell.acquire(False):
                    rung = True
            # Drain whatever data is already in the ring before checking
            # for control messages; data dominates, control is rare.
            drained = False
            while True:
                payload = ring.try_recv()
                if payload is None:
                    break
                consumed_chunks += 1
                handle_push(payload)
                drained = True
            try:
                message = commands.get_nowait()
            except Empty:
                if drained:
                    rung = False
                elif rung:
                    # The ding beat its message here (mp.Queue puts land
                    # via a feeder thread); it is imminent — take a micro
                    # nap instead of a full idle block.
                    time.sleep(0.0005)
                elif doorbell is not None:
                    # Fully idle: block on the doorbell (instant wakeup on
                    # the next send), bounded as a liveness re-check.
                    rung = doorbell.acquire(True, _IDLE_WAIT)
                else:
                    time.sleep(_IDLE_WAIT)
                continue
            rung = False
        else:
            message = commands.get()
        op = message[0]
        if op == "fence":
            # Control messages are fenced behind the data stream: catch the
            # ring up to the send count, then execute the inner command.
            _, target, message = message
            if ring is not None:
                drain_ring_to(target)
            op = message[0]
        if op == "stop":
            # Reap the engine on the way out so a worker stopped without a
            # prior "close" (e.g. best-effort facade shutdown after a
            # failure) still releases its subscriptions.
            try:
                engine.close()
            except BaseException:
                pass
            if ring is not None:
                ring.close()
            break
        if op == "push":
            handle_push(message[1])
            continue

        # Synchronous opcodes.  SYNC_OPS is the contract: anything else is
        # rejected here, so the dispatch below and the documented opcode
        # split cannot drift apart.
        if op not in SYNC_OPS:
            replies.put(("err", f"unknown opcode {op!r}"))
            continue
        if failure is not None:
            # The shard is latched broken: every synchronous opcode keeps
            # reporting the original failure.  "close" is special-cased so
            # shutdown still reaps the engine — the facade ignores the
            # error reply on its best-effort close path, and a repeated
            # close must stay a safe no-op rather than leak the engine.
            if op == "close":
                try:
                    engine.close()
                except BaseException:
                    pass
            replies.put(("err", f"shard {shard_id} failed during push:\n{failure}"))
            continue
        try:
            payload: object = None
            if op == "subscribe":
                _, name, query, algorithm, options, keep, buffer, metrics = message
                engine.subscribe(
                    name,
                    query,
                    algorithm=algorithm,
                    keep_results=keep,
                    result_buffer=buffer,
                    collect_metrics=metrics,
                    **options,
                )
            elif op == "update_preference":
                payload = engine.update_preference(message[1], message[2])
            elif op == "unsubscribe":
                engine.unsubscribe(message[1])
            elif op == "flush":
                payload = engine.flush()
            elif op == "sync":
                payload = pushed
            elif op == "results":
                _, name, drain = message
                subscription = engine.subscription(name)
                payload = (
                    list(subscription.drain()) if drain else subscription.results()
                )
            elif op == "drain":
                payload = engine.drain_results()
            elif op == "latest":
                payload = engine.subscription(message[1]).latest()
            elif op == "stats":
                payload = engine.stats()
            elif op == "stats_one":
                payload = engine.subscription(message[1]).stats()
            elif op == "snapshot_one":
                payload = engine.subscription(message[1]).snapshot()
            elif op == "telemetry":
                payload = telemetry()
            elif op == "transport_stats":
                payload = {
                    "shard": shard_id,
                    "transport": "shm" if ring is not None else "queue",
                    "chunks": consumed_chunks if ring is not None else decode_stats["decoded_batches"],
                    **decode_stats,
                }
            elif op == "metrics":
                payload = registry.snapshot()
            elif op == "spans":
                payload = span_payload(tracer.drain())
            elif op == "set_tracing":
                if message[1]:
                    tracer.enable()
                else:
                    tracer.disable()
            elif op == "snapshot":
                payload = engine.snapshot()
            elif op == "groups":
                payload = engine.groups()
            elif op == "capture":
                _, name, remove = message
                payload = engine.capture_subscription(name)
                if remove:
                    engine.unsubscribe(name)
            elif op == "restore":
                engine.restore_subscription(message[1])
            elif op == "attach_controller":
                if controller is not None:
                    raise RuntimeError(f"shard {shard_id} already has a controller")
                controller = AdaptiveController(message[1])
                engine.attach_controller(controller)
            elif op == "detach_controller":
                engine.detach_controller()
                controller = None
            elif op == "wal_status":
                # Resurrection handshake: how many chunks the journal
                # holds, so the router knows which retained chunks to
                # re-send.  Sent unfenced (there is nothing to fence
                # against in a fresh ring).
                payload = {
                    "shard": shard_id,
                    "chunks": durability.chunks_logged if durability is not None else None,
                    "ingested": pushed,
                    "recovered_subscriptions": (
                        None if recovery is None else recovery.restored_subscriptions
                    ),
                }
            elif op == "manifest":
                # Which subscriptions this shard hosts — the facade
                # rebuilds its name->shard map (and load accounting)
                # from these after a restart.
                payload = {
                    name: engine.subscription(name).query
                    for name in engine.subscriptions()
                }
            elif op == "controller_report":
                if controller is None:
                    payload = None
                else:
                    payload = {
                        "shard": shard_id,
                        "events": [event.as_dict() for event in controller.events()],
                        "accuracy": controller.accuracy_report(),
                        "knowledge": controller.knowledge.describe(),
                    }
            else:  # op == "close" (the last member of SYNC_OPS)
                payload = engine.close()
            replies.put(("ok", payload))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the facade
            replies.put(
                ("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )
