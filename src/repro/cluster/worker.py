"""The shard worker: one :class:`StreamEngine` behind a command queue.

Each worker is a separate OS process (its own interpreter, its own GIL)
hosting a full single-process engine — query groups, ``k_max`` shared
plans, and optionally an adaptive controller all work inside a shard
exactly as they do locally.  The worker loop is deliberately dumb: it
pops ``(opcode, ...)`` tuples off its command queue, applies them to the
engine, and pushes ``("ok", payload)`` / ``("err", message)`` tuples onto
its reply queue for synchronous opcodes.

``push`` is the one asynchronous opcode: the router streams pre-chunked,
slide-aligned object batches without waiting for replies (that is where
the parallelism comes from), and any failure raised while processing a
batch is latched and surfaced at the next synchronous opcode, so errors
cannot disappear just because nobody was waiting.
"""

from __future__ import annotations

import traceback
from typing import Dict, Optional

from ..control import AdaptiveController
from ..engine import StreamEngine

#: Opcodes that reply on the worker's reply queue.  ``push`` and ``stop``
#: are fire-and-forget; everything else is synchronous.
SYNC_OPS = frozenset(
    {
        "subscribe",
        "unsubscribe",
        "flush",
        "sync",
        "results",
        "drain",
        "latest",
        "stats",
        "stats_one",
        "snapshot_one",
        "telemetry",
        "snapshot",
        "groups",
        "capture",
        "restore",
        "attach_controller",
        "detach_controller",
        "controller_report",
        "close",
    }
)


def shard_worker_main(shard_id: int, commands, replies) -> None:
    """Entry point of a worker process (module-level so every
    multiprocessing start method can import it)."""
    engine = StreamEngine(keep_results=True, return_results=True)
    controller: Optional[AdaptiveController] = None
    pushed = 0
    failure: Optional[str] = None

    def telemetry() -> Dict[str, Dict[str, object]]:
        """Per-subscription statistics plus the raw bounded latency sample,
        so the facade can merge percentiles from samples instead of
        averaging per-shard percentiles (which would be wrong)."""
        record: Dict[str, Dict[str, object]] = {}
        for name in engine.subscriptions():
            subscription = engine.subscription(name)
            record[name] = {
                "stats": subscription.stats(),
                "latencies": list(subscription.metrics.latencies),
                "shard": shard_id,
            }
        return record

    while True:
        message = commands.get()
        op = message[0]
        if op == "stop":
            # Reap the engine on the way out so a worker stopped without a
            # prior "close" (e.g. best-effort facade shutdown after a
            # failure) still releases its subscriptions.
            try:
                engine.close()
            except BaseException:
                pass
            break
        if op == "push":
            if failure is not None:
                continue  # the shard is broken; drop data, keep the error
            try:
                batch = message[1]
                # The router pre-chunks to slide-aligned sizes; move the
                # whole batch through each query group with one call.
                engine.push_many(batch, chunk_size=max(1, len(batch)))
                pushed += len(batch)
            except BaseException:
                failure = traceback.format_exc()
            continue

        # Synchronous opcodes.  SYNC_OPS is the contract: anything else is
        # rejected here, so the dispatch below and the documented opcode
        # split cannot drift apart.
        if op not in SYNC_OPS:
            replies.put(("err", f"unknown opcode {op!r}"))
            continue
        if failure is not None:
            # The shard is latched broken: every synchronous opcode keeps
            # reporting the original failure.  "close" is special-cased so
            # shutdown still reaps the engine — the facade ignores the
            # error reply on its best-effort close path, and a repeated
            # close must stay a safe no-op rather than leak the engine.
            if op == "close":
                try:
                    engine.close()
                except BaseException:
                    pass
            replies.put(("err", f"shard {shard_id} failed during push:\n{failure}"))
            continue
        try:
            payload: object = None
            if op == "subscribe":
                _, name, query, algorithm, options, keep, buffer, metrics = message
                engine.subscribe(
                    name,
                    query,
                    algorithm=algorithm,
                    keep_results=keep,
                    result_buffer=buffer,
                    collect_metrics=metrics,
                    **options,
                )
            elif op == "unsubscribe":
                engine.unsubscribe(message[1])
            elif op == "flush":
                payload = engine.flush()
            elif op == "sync":
                payload = pushed
            elif op == "results":
                _, name, drain = message
                subscription = engine.subscription(name)
                payload = (
                    list(subscription.drain()) if drain else subscription.results()
                )
            elif op == "drain":
                payload = engine.drain_results()
            elif op == "latest":
                payload = engine.subscription(message[1]).latest()
            elif op == "stats":
                payload = engine.stats()
            elif op == "stats_one":
                payload = engine.subscription(message[1]).stats()
            elif op == "snapshot_one":
                payload = engine.subscription(message[1]).snapshot()
            elif op == "telemetry":
                payload = telemetry()
            elif op == "snapshot":
                payload = engine.snapshot()
            elif op == "groups":
                payload = engine.groups()
            elif op == "capture":
                _, name, remove = message
                payload = engine.capture_subscription(name)
                if remove:
                    engine.unsubscribe(name)
            elif op == "restore":
                engine.restore_subscription(message[1])
            elif op == "attach_controller":
                if controller is not None:
                    raise RuntimeError(f"shard {shard_id} already has a controller")
                controller = AdaptiveController(message[1])
                engine.attach_controller(controller)
            elif op == "detach_controller":
                engine.detach_controller()
                controller = None
            elif op == "controller_report":
                if controller is None:
                    payload = None
                else:
                    payload = {
                        "shard": shard_id,
                        "events": [event.as_dict() for event in controller.events()],
                        "accuracy": controller.accuracy_report(),
                        "knowledge": controller.knowledge.describe(),
                    }
            else:  # op == "close" (the last member of SYNC_OPS)
                payload = engine.close()
            replies.put(("ok", payload))
        except BaseException as exc:  # noqa: BLE001 - forwarded to the facade
            replies.put(
                ("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )
