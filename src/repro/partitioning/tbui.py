"""TBUI — the Threshold-Based k-Unit Identification algorithm (Algorithm 2).

TBUI labels every completed unit of a partition as a *k-unit* (it may hold
more than ``O(k)`` k-skyband objects, so its detailed scan is deferred and
given its own S-AVL) or a *non-k-unit* (at most ``O(k)`` of its objects can
ever matter, so remembering its single best object is enough).

The labelling never scans a unit twice.  A self-adapting threshold ``τ``
tracks the recent score level:

* during initialisation (and after every re-initialisation) ``τ`` is set to
  the ``ζ*``-th highest score of the ``2ζ*`` objects collected so far;
* a unit that finishes with at least ``k`` objects above ``τ`` demotes the
  *previous* unit to a non-k-unit (Theorem 2: the previous unit's weaker
  objects are dominated by ``ω(k)`` later objects);
* a unit that finishes with fewer than ``k`` objects above ``τ`` signals a
  downtrend: the previous unit keeps its k-unit label and ``τ`` is
  re-initialised;
* a buffer overflowing ``max(2ζ*, ζ_max)`` mid-unit signals an uptrend and
  refreshes ``τ`` immediately.
"""

from __future__ import annotations

import math
from typing import List

from ..stats.selection import kth_largest
from ..stats.solvers import zeta_max, zeta_star


class TBUIState:
    """Threshold bookkeeping shared by the units of one stream."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.zeta_star = zeta_star(k)
        self.zeta_max = zeta_max(k)
        self.tau = -math.inf
        self.initializing = True
        self._above: List[float] = []
        self._refresh_count = 0

    # ------------------------------------------------------------------
    @property
    def above_count(self) -> int:
        """Number of current-unit objects above the threshold (``|U_v^τ|``)."""
        return len(self._above)

    @property
    def refresh_count(self) -> int:
        """How many times ``τ`` has been refreshed (statistics)."""
        return self._refresh_count

    # ------------------------------------------------------------------
    def observe(self, score: float) -> None:
        """Process one newly arrived object (lines 3-9 of Algorithm 2)."""
        if score >= self.tau:
            self._above.append(score)
        if self.initializing and len(self._above) == 2 * self.zeta_star:
            self._refresh()
        elif not self.initializing and len(self._above) > max(2 * self.zeta_star, self.zeta_max):
            self._refresh()
            self.initializing = True

    def complete_unit(self) -> int:
        """Close the current unit (lines 10-16); return ``|U_v^τ|``.

        The caller uses the returned count to decide whether the previous
        unit must be demoted (count >= k) and whether the closed unit shows
        a downtrend (count < k).
        """
        count = len(self._above)
        if count >= self.k:
            if self.initializing and len(self._above) >= self.zeta_star:
                self._refresh()
            self.initializing = False
        else:
            # Downtrend: restart the threshold initialisation from scratch.
            self.tau = -math.inf
            self.initializing = True
        self._above = []
        return count

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Set ``τ`` to the ``ζ*``-th highest buffered score and shrink the
        buffer to the scores above the new threshold."""
        if len(self._above) < self.zeta_star:
            return
        new_tau = kth_largest(self._above, self.zeta_star)
        self._above = [score for score in self._above if score > new_tau]
        self.tau = new_tau
        self._refresh_count += 1
