"""Enhanced dynamic partitioning (Section 4.3 of the paper).

The enhanced partitioner sizes its partitions exactly like the dynamic
partitioner (Mann-Whitney rank-sum evaluation per completed unit) but
additionally runs TBUI over the arriving objects to classify every unit as
a k-unit or a non-k-unit and to record the per-unit summaries ``L_i``:

* a k-unit's summary holds the unit's true top-k objects ``U_v^k``;
* a non-k-unit's summary holds only its single highest-scored object.

The summaries are attached to every sealed partition, enabling the
segmentation-based S-AVL construction (UBSA, Section 5.2) to bound the size
of ``M_0`` and to skip scanning units that provably contain no k-skyband
object.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.object import StreamObject, top_k
from ..core.partition import UnitSummary
from .dynamic import DynamicPartitioner, _PendingUnit
from .tbui import TBUIState


class EnhancedDynamicPartitioner(DynamicPartitioner):
    """Dynamic partitioning + TBUI unit classification."""

    name = "enhanced-dynamic"

    def __init__(self, alpha: float = 0.05, eta_scale: float = 1.0) -> None:
        super().__init__(alpha=alpha, eta_scale=eta_scale)
        self._tbui: Optional[TBUIState] = None
        self._previous_unit: Optional[_PendingUnit] = None

    # ------------------------------------------------------------------
    def _configure(self) -> None:
        super()._configure()
        assert self.query is not None
        self._tbui = TBUIState(self.query.k)
        self._previous_unit = None

    # ------------------------------------------------------------------
    # Hooks into the dynamic partitioner
    # ------------------------------------------------------------------
    def _observe_object(self, obj: StreamObject) -> None:
        assert self._tbui is not None
        self._tbui.observe(obj.score)

    def _on_unit_complete(self, unit: _PendingUnit) -> None:
        assert self._tbui is not None
        unit.above_tau = self._tbui.complete_unit()
        previous = self._previous_unit
        if (
            previous is not None
            and unit.above_tau >= self._tbui.k
            and previous.above_tau >= self._tbui.k
        ):
            # Theorem 2: when two adjacent units both contribute at least k
            # objects above the (unchanged) threshold, the earlier one
            # cannot be a k-unit.  Units that triggered a threshold
            # re-initialisation (above_tau < k) keep their k-unit label, as
            # in the paper's downtrend discussion.
            previous.is_k_unit = False
        self._previous_unit = unit

    def _on_partition_start(self, seed_unit: _PendingUnit) -> None:
        # TBUI state is continuous over the stream: the threshold keeps
        # tracking the recent score level across partition boundaries, and
        # the seed unit's label was already decided when it completed.
        self._previous_unit = seed_unit

    # ------------------------------------------------------------------
    def _unit_summaries(self, units: List[_PendingUnit]) -> Optional[List[UnitSummary]]:
        summaries: List[UnitSummary] = []
        offset = 0
        for unit in units:
            end = offset + len(unit.objects)
            if unit.is_k_unit:
                summary = list(unit.topk)
            else:
                # Non-k-units only keep their single best object; the unit's
                # top-k is already computed, and its head is that object.
                summary = [unit.topk[0]] if unit.topk else top_k(unit.objects, 1)
            summaries.append(
                UnitSummary(
                    start=offset,
                    end=end,
                    is_k_unit=unit.is_k_unit,
                    summary=summary,
                )
            )
            offset = end
        return summaries
