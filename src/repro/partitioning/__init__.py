"""Partitioning algorithms of the SAP framework (Section 4 of the paper)."""

from .base import PartitionContext, Partitioner
from .equal import EqualPartitioner
from .dynamic import DynamicPartitioner
from .enhanced import EnhancedDynamicPartitioner
from .tbui import TBUIState

__all__ = [
    "PartitionContext",
    "Partitioner",
    "EqualPartitioner",
    "DynamicPartitioner",
    "EnhancedDynamicPartitioner",
    "TBUIState",
]
