"""Dynamic partitioning (Section 4.2 of the paper).

Objects are consumed unit by unit (a unit holds ``l_min = √(n·max(s,k))``
objects, the equal-partition size).  Whenever a unit completes, the
partitioner asks whether the candidate partition extended by the new unit is
still "proper": the top-k scores of the extended partition are compared,
with the Mann-Whitney rank-sum test, against the top-``ηk`` scores of the
reference interval ``I`` (the rest of the current window, approximated by
the current candidate set).  If the partition's top-k tends to be larger
(the evaluation function ``F`` of Equation 2 is positive) the partition is
sealed *without* the new unit; the unit becomes the seed of the next
partition.  A partition is also sealed when it would exceed ``l_max``,
the solution of ``(n − l_max)/l_max = η``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.columnar import topk_objects
from ..core.object import StreamObject
from ..core.partition import PartitionSpec, UnitSummary
from ..stats.mannwhitney import rank_sum_test
from ..stats.solvers import eta_for_k, scaled_eta_k
from .base import Partitioner


class _PendingUnit:
    """One completed unit of the partition currently under construction."""

    __slots__ = ("objects", "topk", "above_tau", "is_k_unit")

    def __init__(self, objects: List[StreamObject], topk: List[StreamObject]) -> None:
        self.objects = objects
        self.topk = topk
        #: Number of objects above the TBUI threshold when the unit closed
        #: (only used by the enhanced partitioner subclass).
        self.above_tau = 0
        #: Provisional TBUI label; every unit starts as a k-unit and may be
        #: demoted by the unit that follows it (Theorem 2).
        self.is_k_unit = True


class DynamicPartitioner(Partitioner):
    """WRT-driven partition sizing."""

    name = "dynamic"

    def __init__(self, alpha: float = 0.05, eta_scale: float = 1.0) -> None:
        """``eta_scale`` multiplies the reference-interval size ``ηk`` (and
        the ``η`` entering the ``l_max`` bound); the adaptive control plane
        retunes it at runtime when the 3-sigma default misjudges the live
        score distribution.  ``1.0`` is the paper's configuration."""
        super().__init__()
        if eta_scale <= 0:
            raise ValueError(f"eta_scale must be positive, got {eta_scale}")
        self._alpha = alpha
        self._eta_scale = eta_scale
        self._unit_size = 0
        self._l_max = 0
        self._eta_k = 0
        self._units: List[_PendingUnit] = []
        self._current: List[StreamObject] = []

    # ------------------------------------------------------------------
    def _configure(self) -> None:
        assert self.query is not None
        query = self.query
        self._unit_size = query.l_min
        eta = eta_for_k(query.k) * self._eta_scale
        self._eta_k = scaled_eta_k(query.k, self._eta_scale)
        self._l_max = query.l_max(eta)
        self._units = []
        self._current = []

    # ------------------------------------------------------------------
    def plan_key(self) -> tuple:
        # Covers EnhancedDynamicPartitioner too: the subclass adds TBUI
        # bookkeeping but no extra configuration.
        return (type(self).__name__, self._alpha, self._eta_scale)

    def spawn(self) -> "DynamicPartitioner":
        return type(self)(alpha=self._alpha, eta_scale=self._eta_scale)

    @property
    def unit_size(self) -> int:
        return self._unit_size

    @property
    def l_max(self) -> int:
        return self._l_max

    @property
    def eta_scale(self) -> float:
        return self._eta_scale

    @property
    def alpha(self) -> float:
        return self._alpha

    def retuned(self, eta_scale: float) -> "DynamicPartitioner":
        """A fresh, unbound partitioner of this family with a new
        ``eta_scale`` (the control plane's η-retune tactic)."""
        return type(self)(alpha=self._alpha, eta_scale=eta_scale)

    # ------------------------------------------------------------------
    def observe(self, batch: Sequence[StreamObject]) -> List[PartitionSpec]:
        specs: List[PartitionSpec] = []
        for obj in batch:
            self._observe_object(obj)
            self._current.append(obj)
            if len(self._current) >= self._unit_size:
                spec = self._complete_unit()
                if spec is not None:
                    specs.append(spec)
        return specs

    def _observe_object(self, obj: StreamObject) -> None:
        """Hook for the enhanced partitioner's per-object TBUI bookkeeping."""

    # ------------------------------------------------------------------
    def _complete_unit(self) -> Optional[PartitionSpec]:
        assert self.query is not None
        unit_objects = self._current
        self._current = []
        unit = _PendingUnit(
            objects=unit_objects, topk=topk_objects(unit_objects, self.query.k)
        )
        self._on_unit_complete(unit)

        if not self._units:
            self._units = [unit]
            return None

        if self._partition_is_proper(unit):
            self._units.append(unit)
            return None

        spec = self._seal_units(self._units)
        self._units = [unit]
        self._on_partition_start(unit)
        return spec

    def _partition_is_proper(self, new_unit: _PendingUnit) -> bool:
        """Decide whether the pending partition may absorb the new unit."""
        assert self.query is not None and self.context is not None
        merged_size = sum(len(unit.objects) for unit in self._units) + len(new_unit.objects)
        if merged_size > self._l_max:
            return False

        reference = self.context.top_candidate_scores(self._eta_k)
        if len(reference) < max(self.query.k, 2):
            # Not enough history to compare against: keep growing, the size
            # cap above still bounds the partition.
            return True

        candidate_pool = [obj for unit in self._units for obj in unit.topk]
        candidate_pool.extend(new_unit.topk)
        sample1 = [obj.score for obj in topk_objects(candidate_pool, self.query.k)]
        outcome = rank_sum_test(sample1, reference, alpha=self._alpha)
        return not outcome.first_is_larger

    # ------------------------------------------------------------------
    # Hooks overridden by the enhanced partitioner
    # ------------------------------------------------------------------
    def _on_unit_complete(self, unit: _PendingUnit) -> None:
        """Called every time a unit fills up."""

    def _on_partition_start(self, seed_unit: _PendingUnit) -> None:
        """Called when a new partition is started from ``seed_unit``."""

    def _seal_units(self, units: List[_PendingUnit]) -> PartitionSpec:
        objects = [obj for unit in units for obj in unit.objects]
        self.seals.record(len(objects))
        return PartitionSpec(objects=objects, units=self._unit_summaries(units))

    def _unit_summaries(self, units: List[_PendingUnit]) -> Optional[List[UnitSummary]]:
        """The plain dynamic partitioner attaches no unit metadata."""
        return None

    # ------------------------------------------------------------------
    def pending_objects(self) -> List[StreamObject]:
        pending = [obj for unit in self._units for obj in unit.objects]
        pending.extend(self._current)
        return pending

    def _drop_pending(self) -> None:
        self._units = []
        self._current = []
