"""Partitioner interface and the context object handed to partitioners.

A partitioner receives the arrivals of every slide, accumulates them in its
own pending buffer, and decides when to seal a partition.  The decision may
be retroactive — the dynamic partitioner seals the pending buffer *without*
the unit that has just completed — which is why the partitioner owns the
buffer and returns the sealed objects themselves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence

from ..core.object import StreamObject
from ..core.partition import PartitionSpec
from ..core.query import TopKQuery


class PartitionContext:
    """Read-only view of the framework state partitioners may consult.

    The dynamic partitioner needs the top scores of the current candidate
    set (the reference interval ``I_ηk`` of Equation 2); the framework
    provides them through a callback so the partitioner never touches the
    candidate structures directly.
    """

    def __init__(self, top_candidate_scores: Callable[[int], List[float]]) -> None:
        self._top_candidate_scores = top_candidate_scores

    def top_candidate_scores(self, count: int) -> List[float]:
        """Scores of the best ``count`` candidates currently maintained."""
        return self._top_candidate_scores(count)


class SealStats:
    """Counters describing the sealing behaviour of one partitioner.

    Surfaced through :meth:`Partitioner.seal_stats` so the adaptive control
    plane (and tests) can observe partition sizing without touching the
    partitioner's internals: how many partitions were sealed, how many
    objects they covered, how many seals were forced by the expiration
    safety valve, and the size of the most recent seal.
    """

    __slots__ = ("partitions_sealed", "objects_sealed", "forced_seals", "last_partition_size")

    def __init__(self) -> None:
        self.partitions_sealed = 0
        self.objects_sealed = 0
        self.forced_seals = 0
        self.last_partition_size = 0

    def record(self, size: int, forced: bool = False) -> None:
        self.partitions_sealed += 1
        self.objects_sealed += size
        self.last_partition_size = size
        if forced:
            self.forced_seals += 1

    @property
    def average_partition_size(self) -> float:
        if not self.partitions_sealed:
            return 0.0
        return self.objects_sealed / self.partitions_sealed

    def as_dict(self) -> dict:
        return {
            "partitions_sealed": self.partitions_sealed,
            "objects_sealed": self.objects_sealed,
            "forced_seals": self.forced_seals,
            "last_partition_size": self.last_partition_size,
            "average_partition_size": self.average_partition_size,
        }


class Partitioner(ABC):
    """Base class of the equal, dynamic, and enhanced dynamic partitioners."""

    name: str = "partitioner"

    def __init__(self) -> None:
        self.query: Optional[TopKQuery] = None
        self.context: Optional[PartitionContext] = None
        self.seals = SealStats()

    # ------------------------------------------------------------------
    def bind(self, query: TopKQuery, context: PartitionContext) -> None:
        """Attach the partitioner to a query; called once by the framework."""
        self.query = query
        self.context = context
        self._configure()

    def _configure(self) -> None:
        """Hook for subclasses to derive per-query constants."""

    # ------------------------------------------------------------------
    # Multi-query sharing
    # ------------------------------------------------------------------
    def plan_key(self) -> tuple:
        """Configuration key deciding which SAP queries may share sealing.

        Two SAP instances whose partitioners return equal keys seal
        identical partition runs for the same arrivals (up to the ``k``
        they are bound to), so a query group can run one sealer for all of
        them.  The key must be derived from the *requested* configuration,
        not from quantities resolved against the bound query — those
        depend on ``k``, which sharing deliberately varies.
        """
        return (type(self).__name__,)

    def spawn(self) -> "Partitioner":
        """A fresh, unbound partitioner with this instance's configuration.

        Used by the shared multi-query plane to create the group-level
        sealer: the clone is bound to the group's ``k_max`` query instead
        of any individual member's.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support shared sealing"
        )

    # ------------------------------------------------------------------
    @abstractmethod
    def observe(self, batch: Sequence[StreamObject]) -> List[PartitionSpec]:
        """Feed one slide of arrivals; return the partitions sealed by it."""

    @abstractmethod
    def pending_objects(self) -> List[StreamObject]:
        """Objects accumulated but not yet sealed (oldest first)."""

    def pending_count(self) -> int:
        return len(self.pending_objects())

    def force_seal(self) -> Optional[PartitionSpec]:
        """Seal everything pending immediately.

        Used by the framework as a safety valve when expirations would
        otherwise reach into the unsealed buffer (only possible for extreme
        parameter choices such as a single partition per window).
        """
        pending = self.pending_objects()
        if not pending:
            return None
        spec = PartitionSpec(objects=list(pending))
        self._drop_pending()
        self.seals.record(len(spec.objects), forced=True)
        return spec

    def seal_stats(self) -> dict:
        """Introspection record of this partitioner's sealing behaviour."""
        stats = self.seals.as_dict()
        stats["name"] = self.name
        stats["pending"] = self.pending_count()
        return stats

    @abstractmethod
    def _drop_pending(self) -> None:
        """Clear the pending buffer after a forced seal."""
