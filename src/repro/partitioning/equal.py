"""Equal partitioning (Section 4.1 of the paper).

Every partition contains the same number of objects.  The size is derived
from the partition resolution ``m``: the window is conceptually split into
``m`` sub-windows, so each partition holds ``⌈n / m⌉`` objects, rounded up
to a whole number of slides and never smaller than ``max(s, k)``.  The cost
model of Section 4.1 shows that ``m* = ⌈√(n / max(s, k))⌉`` minimises the
upper bound of ``|C ∪ M_0|``; that value is the default.

When ``n / m ≤ s`` every partition degenerates to a single slide and SAP
behaves exactly like MinTopK — the paper points this out to position
MinTopK as a special case of the framework.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..core.exceptions import InvalidPartitionError
from ..core.object import StreamObject
from ..core.partition import PartitionSpec
from .base import Partitioner


class EqualPartitioner(Partitioner):
    """Fixed-size partitioning with a configurable resolution ``m``."""

    name = "equal"

    def __init__(self, m: int = 0) -> None:
        """``m`` is the partition resolution; 0 (default) selects ``m*``."""
        super().__init__()
        if m < 0:
            raise InvalidPartitionError(f"partition resolution m must be >= 0, got {m}")
        self._requested_m = m
        self._partition_size = 0
        self._pending: List[StreamObject] = []

    # ------------------------------------------------------------------
    def _configure(self) -> None:
        assert self.query is not None
        query = self.query
        m = self._requested_m if self._requested_m > 0 else query.m_star
        raw = int(math.ceil(query.n / m))
        size = max(raw, query.s, query.k)
        # Partitions must hold a whole number of slides so that the s
        # objects arriving together stay in the same partition.
        if size % query.s:
            size = (size // query.s + 1) * query.s
        self._partition_size = min(size, max(query.n, query.s, query.k))
        self.name = f"equal(m={m})"

    @property
    def partition_size(self) -> int:
        return self._partition_size

    # ------------------------------------------------------------------
    def plan_key(self) -> tuple:
        return (type(self).__name__, self._requested_m)

    def spawn(self) -> "EqualPartitioner":
        return EqualPartitioner(m=self._requested_m)

    # ------------------------------------------------------------------
    def observe(self, batch: Sequence[StreamObject]) -> List[PartitionSpec]:
        self._pending.extend(batch)
        specs: List[PartitionSpec] = []
        while len(self._pending) >= self._partition_size:
            sealed = self._pending[: self._partition_size]
            del self._pending[: self._partition_size]
            self.seals.record(len(sealed))
            specs.append(PartitionSpec(objects=sealed))
        return specs

    def pending_objects(self) -> List[StreamObject]:
        return list(self._pending)

    def _drop_pending(self) -> None:
        self._pending = []
