"""Serving layer — sustained HTTP ingestion and subscription churn.

Trajectory benchmark: the headline numbers are recorded in
``BENCH_serving.json`` at the repository root to track the serving
layer's overhead across PRs.

Two measurements, both over real sockets against ``repro.serve``:

* **Sustained ingestion** — events/second through ``POST /events`` with
  mixed-window subscriptions attached, batched the way a real producer
  would batch (hundreds of events per request, keep-alive connection).
  The answers the server delivers are checked byte-for-byte against an
  embedded :class:`StreamEngine` fed the same admitted sequence, so the
  measured number is for *exact* service, not best-effort.
* **Subscription churn** — subscribe/unsubscribe cycles per second while
  the service stays up, the control-plane cost of a multi-tenant server.
"""

import http.client
import json
import os
import time

from repro import StreamEngine, StreamObject, TopKQuery
from repro.bench.reporting import format_table, write_results
from repro.bench.workloads import dataset_stream
from repro.serve import ServeConfig, run_in_thread

from conftest import run_sweep

#: Events per POST /events request: large enough to amortise HTTP
#: round-trips, small enough to stay far under the body limit.
BATCH = 500

#: Window shapes served while ingesting (n, k, s).
SHAPES = [(1000, 10, 50), (500, 5, 25), (2000, 20, 100)]

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json")


class Client:
    """One keep-alive HTTP connection to the served API."""

    def __init__(self, port):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)

    def request(self, method, path, body=None):
        payload = json.dumps(body) if body is not None else None
        self.conn.request(
            method, path, body=payload, headers={"Content-Type": "application/json"}
        )
        response = self.conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else None

    def close(self):
        self.conn.close()


def reference_answers(scores, shapes):
    """The embedded-engine ground truth for the same admitted sequence."""
    engine = StreamEngine(keep_results=True)
    for index, (n, k, s) in enumerate(shapes):
        engine.subscribe(f"q{index}", TopKQuery(n=n, k=k, s=s))
    engine.push_many(
        [StreamObject(score=score, t=t) for t, score in enumerate(scores)],
        chunk_size=len(scores),
    )
    produced = engine.drain_results()
    engine.close()
    return {
        name: [
            (r.slide_index, r.window_end, tuple((o.score, o.t) for o in r.objects))
            for r in results
        ]
        for name, results in produced.items()
    }


def scale_shapes(scale):
    """Shrink the window shapes to the scale's stream length."""
    factor = max(1, 12_000 // max(1, scale.stream_length))
    return [
        (max(20, n // factor), min(k, max(2, n // factor // 2)), max(5, s // factor))
        for n, k, s in SHAPES
    ]


def measure_serving(scale):
    scores = [obj.score for obj in dataset_stream("STOCK", scale.stream_length)]
    shapes = scale_shapes(scale)

    with run_in_thread(ServeConfig(port=0, linger_ms=20)) as handle:
        client = Client(handle.port)
        try:
            for index, (n, k, s) in enumerate(shapes):
                status, _ = client.request(
                    "POST",
                    "/subscriptions",
                    {"name": f"q{index}", "n": n, "k": k, "s": s},
                )
                assert status == 201, f"subscribe q{index} failed with {status}"

            # Sustained ingestion: every event carries an id, so the
            # measured path includes the dedupe window.
            started = time.perf_counter()
            accepted = 0
            for begin in range(0, len(scores), BATCH):
                events = [
                    {"id": f"e{begin + i}", "score": score}
                    for i, score in enumerate(scores[begin : begin + BATCH])
                ]
                status, body = client.request("POST", "/events", {"events": events})
                assert status == 200
                accepted += body["accepted"]
            ingest_seconds = time.perf_counter() - started
            assert accepted == len(scores)

            # Exactness: drain each subscription's history and compare
            # identities against the embedded run (same t origin — this
            # server saw no events before the subscriptions existed).
            deadline = time.monotonic() + 30
            expected = reference_answers(scores, shapes)
            served = {}
            while time.monotonic() < deadline:
                served = {}
                for index in range(len(shapes)):
                    _, body = client.request(
                        "GET", f"/subscriptions/q{index}/results"
                    )
                    served[f"q{index}"] = [
                        (
                            r["slide_index"],
                            r["window_end"],
                            tuple((o["score"], o["t"]) for o in r["objects"]),
                        )
                        for r in body["results"]
                    ]
                if all(
                    len(served[name]) >= len(expected.get(name, []))
                    for name in served
                ):
                    break
                time.sleep(0.05)
            exact = served == expected

            # Subscription churn: create/destroy cycles on a live server.
            cycles = max(20, scale.stream_length // 100)
            started = time.perf_counter()
            for cycle in range(cycles):
                status, _ = client.request(
                    "POST",
                    "/subscriptions",
                    {"name": f"churn-{cycle}", "n": 100, "k": 5, "s": 10},
                )
                assert status == 201
                status, _ = client.request(
                    "DELETE", f"/subscriptions/churn-{cycle}"
                )
                assert status == 204
            churn_seconds = time.perf_counter() - started

            _, stats = client.request("GET", "/stats")
        finally:
            client.close()

    return [
        {
            "events": len(scores),
            "subscriptions": len(shapes),
            "ingest_seconds": round(ingest_seconds, 4),
            "events_per_second": round(len(scores) / ingest_seconds, 1),
            "churn_cycles": cycles,
            "churn_seconds": round(churn_seconds, 4),
            "churn_per_second": round(cycles / churn_seconds, 1),
            "exact": exact,
            "answers_delivered": stats["sessions"]["results_pushed"],
            "dedupe": stats["ingest"]["dedupe"],
        }
    ]


def write_trajectory(rows, scale) -> None:
    row = rows[0]
    payload = {
        "benchmark": "serving",
        "scale": scale.name,
        "rows": rows,
        "headline": {
            "events_per_second": row["events_per_second"],
            "churn_per_second": row["churn_per_second"],
            "exact": row["exact"],
        },
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_serving(benchmark, scale):
    rows = run_sweep(benchmark, measure_serving, scale)
    assert rows
    row = rows[0]
    table = format_table(
        f"Serving ({scale.name} scale): {row['events']} events into "
        f"{row['subscriptions']} subscriptions over HTTP",
        ["events/s", "ingest s", "churn/s", "answers", "exact"],
        [
            [
                row["events_per_second"],
                row["ingest_seconds"],
                row["churn_per_second"],
                row["answers_delivered"],
                str(row["exact"]),
            ]
        ],
    )
    print("\n" + table)
    write_results("serving", table, raw={"rows": rows})
    write_trajectory(rows, scale)

    # The serving layer is only worth its overhead if it is exact: the
    # answers pushed over the network must match the embedded engine.
    assert row["exact"], "served answers differ from the embedded engine"
    assert row["answers_delivered"] > 0
