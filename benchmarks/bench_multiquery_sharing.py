"""Multi-query sharing — N independent engines vs one shared plane.

This is the repo's first *trajectory* benchmark: unlike the table/figure
reproductions, it measures the engine architecture itself, so its headline
numbers are recorded in ``BENCH_multiquery.json`` at the repository root
(as well as under ``benchmarks/results/``) to track the speedup of the
shared multi-query plane across PRs.

The workload is the ROADMAP's north-star scenario scaled down: eight users
watching the same feed with the same window shape ``(n, s)`` but different
result sizes ``k``.  The pre-group architecture runs eight independent
engines (eight batchers, eight sealing pipelines); the query-group plane
runs one engine, where the eight queries share one batcher and one
``k_max`` execution plan.  The acceptance bar is a >= 1.5x throughput gain
for SAP (the baselines share far more and gain proportionally).
"""

import json
import os

import pytest

from repro.bench.experiments import measure_multiquery_sharing
from repro.bench.reporting import format_table, write_results

from conftest import run_sweep

#: Result sizes of the eight concurrent queries (shared window shape).
K_VALUES = (5, 10, 15, 20, 25, 30, 40, 50)
ALGORITHMS = ("SAP", "k-skyband", "MinTopK")

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_multiquery.json")

#: SAP shared-plane throughput (events/second) recorded in the trajectory
#: file before the columnar data plane landed, on this workload at default
#: scale.  The vectorized-vs-seed row in the trajectory headline compares
#: the current single-process shared plane against this constant, so the
#: per-object -> columnar hot-path rewrite stays visible across PRs.
SEED_SAP_SHARED_EVENTS_PER_SECOND = 76_155.4


def fanout_shape(scale):
    """The bench's window shape: a wide monitoring window with a 5% slide.

    Eight dashboards over one feed watch minutes of history, not seconds —
    so the shape doubles the scale's default window; the 5% slide sits in
    the middle of the paper's ``s`` sweep (1%–10% of ``n``).
    """
    n = min(2 * scale.default_n, scale.stream_length // 4)
    return n, max(1, n // 20)


def sharing_sweep(scale):
    n, s = fanout_shape(scale)
    rows = []
    for algorithm in ALGORITHMS:
        row = measure_multiquery_sharing(
            dataset="STOCK",
            query_shape=(n, s),
            k_values=K_VALUES,
            algorithm=algorithm,
            stream_length=scale.stream_length,
        )
        rows.append(row)
    return rows


def write_trajectory(rows, scale) -> None:
    payload = {
        "benchmark": "multiquery_sharing",
        "scale": scale.name,
        "queries": len(K_VALUES),
        "k_values": list(K_VALUES),
        "rows": rows,
        "headline": {
            row["algorithm"]: {
                "speedup": round(row["speedup"], 3),
                "independent_events_per_second": round(
                    row["independent"]["events_per_second"], 1
                ),
                "shared_events_per_second": round(
                    row["shared"]["events_per_second"], 1
                ),
            }
            for row in rows
        },
    }
    sap = next((row for row in rows if row["algorithm"] == "SAP"), None)
    if sap is not None:
        shared_eps = sap["shared"]["events_per_second"]
        payload["vectorized_vs_seed"] = {
            "algorithm": "SAP",
            "scale": scale.name,
            "seed_events_per_second": SEED_SAP_SHARED_EVENTS_PER_SECOND,
            "vectorized_events_per_second": round(shared_eps, 1),
            # Only the default scale reran the seed's exact workload; other
            # scales record the ratio for context, not for the bar.
            "speedup_vs_seed": round(
                shared_eps / SEED_SAP_SHARED_EVENTS_PER_SECOND, 3
            ),
        }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_multiquery_sharing(benchmark, scale):
    rows = run_sweep(benchmark, sharing_sweep, scale)
    assert rows
    table = format_table(
        f"Multi-query sharing ({scale.name} scale): {len(K_VALUES)} same-window "
        "queries, independent engines vs one shared plane",
        [
            "algorithm",
            "indep s",
            "shared s",
            "speedup",
            "indep ev/s",
            "shared ev/s",
            "shared p95 slide",
        ],
        [
            [
                row["algorithm"],
                row["independent"]["seconds"],
                row["shared"]["seconds"],
                row["speedup"],
                row["independent"]["events_per_second"],
                row["shared"]["events_per_second"],
                row["shared"]["p95_slide_latency"],
            ]
            for row in rows
        ],
    )
    print("\n" + table)
    write_results("multiquery_sharing", table, raw={"rows": rows})
    write_trajectory(rows, scale)
    # The architectural acceptance bar: sharing must beat independent
    # engines by >= 1.5x for 8 same-window queries, on every algorithm
    # that implements a shared plan.
    for row in rows:
        assert row["speedup"] >= 1.5, (
            f"{row['algorithm']}: shared plane only {row['speedup']:.2f}x faster"
        )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_shared_plane_answers_match_independent(scale, algorithm):
    """Correctness guard riding along with the benchmark (tiny scale)."""
    from repro.bench.workloads import dataset_stream
    from repro.core.query import TopKQuery
    from repro.core.result import results_agree
    from repro.engine import StreamEngine
    from repro.registry import create_algorithm

    objects = dataset_stream("STOCK", 2_000)
    engine = StreamEngine()
    for k in (5, 20):
        engine.subscribe(f"k{k}", TopKQuery(n=400, k=k, s=40), algorithm=algorithm)
    engine.push_many(objects)
    for k in (5, 20):
        reference = create_algorithm(algorithm, TopKQuery(n=400, k=k, s=40)).run(objects)
        assert results_agree(engine.results(f"k{k}"), reference)
