"""Ablation — SAP design choices (not a paper table).

DESIGN.md calls out the framework's main design decisions: the delay policy
for forming the meaningful object set, the S-AVL structure (vs a plain
re-scan), the amortized proactive formation, and the partitioner choice.
Table 2 of the paper ablates the first two under the equal partitioner;
this benchmark extends the ablation to the full configuration matrix the
library exposes, on the two most contrasting datasets (TIMEU and TIMER),
using the default query parameters.
"""

import pytest

from repro.bench.reporting import format_table, write_results
from repro.bench.workloads import dataset_stream
from repro.core.query import TopKQuery
from repro.registry import get_algorithm
from repro.runner.engine import run_algorithm

from conftest import run_sweep

DATASETS = ["TIMEU", "TIMER"]

# Every configuration is a registry entry plus ablation options: the
# registry factories accept the SAP keyword arguments (meaningful_policy,
# use_savl) and forward them to the framework.
_sap_equal = get_algorithm("SAP-equal").factory
_sap_enhanced = get_algorithm("SAP-enhanced").factory

CONFIGURATIONS = {
    "equal / lazy / S-AVL": _sap_equal,
    "equal / lazy / rescan": lambda q: _sap_equal(q, use_savl=False),
    "equal / eager / S-AVL": lambda q: _sap_equal(q, meaningful_policy="eager"),
    "equal / amortized / S-AVL": lambda q: _sap_equal(q, meaningful_policy="amortized"),
    "enhanced / lazy / S-AVL": _sap_enhanced,
    "enhanced / amortized / S-AVL": lambda q: _sap_enhanced(
        q, meaningful_policy="amortized"
    ),
}


def ablation_sweep(dataset, scale):
    query = TopKQuery(n=scale.default_n, k=scale.default_k, s=scale.default_s)
    objects = dataset_stream(dataset, scale.stream_length)
    rows = []
    for label, factory in CONFIGURATIONS.items():
        report = run_algorithm(factory(query), objects, keep_results=False)
        rows.append(
            {
                "dataset": dataset,
                "configuration": label,
                "seconds": report.elapsed_seconds,
                "candidates": report.average_candidates,
                "memory_kb": report.average_memory_kb,
            }
        )
    return rows


@pytest.mark.parametrize("dataset", DATASETS)
def test_ablation_design_choices(benchmark, scale, dataset):
    rows = run_sweep(benchmark, ablation_sweep, dataset, scale)
    assert len(rows) == len(CONFIGURATIONS)
    table = format_table(
        f"Ablation ({dataset}, {scale.name} scale): SAP design choices",
        ["configuration", "seconds", "avg candidates", "memory KB"],
        [[row["configuration"], row["seconds"], row["candidates"], row["memory_kb"]] for row in rows],
    )
    print("\n" + table)
    write_results(f"ablation_{dataset.lower()}", table, raw={"rows": rows})
    assert all(row["seconds"] > 0 for row in rows)
