"""Figure 10 — running time comparison on the synthetic datasets.

Figure 10 of the paper repeats the Figure 9 comparison on the synthetic
TIMEU (time-unrelated) and TIMER (time-related) streams, varying n, k, and
s.  TIMER is the adversarial case: its long monotone stretches blow up the
candidate sets of the one-pass baselines and force SMA to re-scan, while
SAP's partitioning keeps both bounded.
"""

import pytest

from repro.bench.experiments import ALGORITHM_FACTORIES, sweep_parameter
from repro.bench.plotting import render_sweep
from repro.bench.reporting import format_table, write_results

from conftest import run_sweep

DATASETS = ["TIMEU", "TIMER"]
SUBFIGURES = {
    "n": "Fig 10(a-b)",
    "k": "Fig 10(c-d)",
    "s": "Fig 10(e-f)",
}


def _values(scale, parameter):
    return {"n": scale.n_values, "k": scale.k_values, "s": scale.s_values}[parameter]


@pytest.mark.parametrize("parameter", list(SUBFIGURES))
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig10_running_time(benchmark, scale, dataset, parameter):
    rows = run_sweep(
        benchmark,
        sweep_parameter,
        dataset,
        scale,
        parameter,
        _values(scale, parameter),
        ALGORITHM_FACTORIES,
    )
    assert rows
    table = format_table(
        f"{SUBFIGURES[parameter]} — {dataset}, running time vs {parameter} "
        f"({scale.name} scale)",
        [parameter, "algorithm", "seconds", "avg candidates", "memory KB"],
        [
            [row["value"], row["algorithm"], row["seconds"], row["candidates"], row["memory_kb"]]
            for row in rows
        ],
    )
    chart = render_sweep(
        f"{SUBFIGURES[parameter]} — {dataset}: running time series", rows
    )
    print("\n" + table + "\n\n" + chart)
    write_results(
        f"fig10_{dataset.lower()}_{parameter}", table + "\n\n" + chart, raw={"rows": rows}
    )
    assert {row["algorithm"] for row in rows} == set(ALGORITHM_FACTORIES)
