"""Durability plane — what crash-exactness costs, and how fast it recovers.

Trajectory benchmark (like ``bench_obs_overhead``): headline numbers land
in ``BENCH_durability.json`` at the repository root.  Three questions:

* **Steady-state overhead** — how much of a durable engine's ingest
  time is spent in the durability plane (WAL encode+append, periodic
  checkpoint commits), measured *inside* one run by timing the
  manager's hooks and dividing by the engine work in the same run.
  The acceptance bar is < 5%: durability must be cheap enough to
  leave on.  (A wall-clock A/B against a plain engine is reported for
  context but not gated: the effect is a few percent, well inside the
  run-to-run variance of a shared CI box, whereas the in-run fraction
  puts noise in numerator and denominator alike.)
* **Recovery at scale** — 1,000 subscriptions over shared window
  shapes, crashed mid-stream (the engine is abandoned, exactly what
  SIGKILL leaves on disk), then ``StreamEngine.recover``: how many
  seconds to the first answer-capable engine, and how many WAL slides
  the tail replay covered.
* **Exactness** — the recovered engine's remaining answer stream is
  compared slide-for-slide, object-for-object against an uncrashed
  twin; the headline records ``exact`` only if every answer matches.

``REPRO_BENCH_SCALE=smoke`` keeps CI to a few seconds while driving the
same code paths (journal, checkpoint, truncate, restore, replay).
"""

import json
import os
import shutil
import tempfile
import time

from repro.bench.reporting import format_table, write_results
from repro.engine import QuerySpec, StreamEngine
from repro.streams import make_dataset

from conftest import run_sweep

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_durability.json")

#: Acceptance bar for the durable-vs-plain A/B on the engine hot path.
OVERHEAD_TARGET = 0.05

#: Recovery is measured at this many live subscriptions.
RECOVERY_SUBSCRIPTIONS = 1_000

#: Repeats per mode (min-of-N: noise only ever adds time).
REPEATS = 3

#: The steady-state serving fleet for the overhead A/B: mixed window
#: shapes and algorithms, as a multi-tenant server runs them.  The
#: stream is journaled ONCE per chunk no matter how many queries consume
#: it, so this — not a single minimal query — is the denominator the
#: "leave durability on" decision is made against.
OVERHEAD_FLEET = tuple(
    (
        300 + 100 * (i % 4),                     # n
        10 + 5 * (i % 3),                        # k
        (20, 25, 50, 100)[i % 4],                # s
        ("SAP", "MinTopK", "k-skyband")[i % 3],  # algorithm
    )
    for i in range(12)
)

#: WAL chunk size: the LCM of the fleet's slide sizes, so every record
#: lands on a slide boundary (slide-granular journaling).
OVERHEAD_CHUNK = 100


def _subscribe_overhead_fleet(engine):
    for i, (n, k, s, algorithm) in enumerate(OVERHEAD_FLEET):
        engine.subscribe(f"q{i}", QuerySpec(n=n, k=k, s=s).using(algorithm))


def _run_plain(stream):
    engine = StreamEngine(keep_results=False, return_results=False)
    _subscribe_overhead_fleet(engine)
    started = time.perf_counter()
    engine.push_many(stream, chunk_size=OVERHEAD_CHUNK)
    elapsed = time.perf_counter() - started
    engine.close()
    return elapsed


def _instrument(manager):
    """Wrap the manager's hot-path hooks to accumulate their wall time.

    Returns the accumulator; ``accumulator[0]`` afterwards is the total
    seconds the ingest loop spent journaling and checkpointing.
    """
    spent = [0.0]

    def timed(method):
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return method(*args, **kwargs)
            finally:
                spent[0] += time.perf_counter() - started

        return wrapper

    manager.log_objects = timed(manager.log_objects)
    manager.log_op = timed(manager.log_op)
    manager.checkpoint = timed(manager.checkpoint)
    return spent


def _run_durable(stream, interval):
    """One durable ingest; returns (total_seconds, durability_seconds)."""
    directory = tempfile.mkdtemp(prefix="repro-bench-dur-")
    try:
        engine = StreamEngine.recover(
            directory,
            checkpoint_interval=interval,
            keep_results=False,
            return_results=False,
        )
        spent = _instrument(engine._durability)
        _subscribe_overhead_fleet(engine)
        spent[0] = 0.0  # the gate covers steady state, not subscribe ops
        started = time.perf_counter()
        engine.push_many(stream, chunk_size=OVERHEAD_CHUNK)
        elapsed = time.perf_counter() - started
        engine.close()
        return elapsed, spent[0]
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def overhead_row(scale):
    """The durability fraction of one ingest, plus a context A/B."""
    stream_length = max(3 * scale.stream_length, 24_000)
    stream = list(make_dataset("STOCK").take(stream_length))
    # untimed warmup: first-touch costs (page cache, fs metadata,
    # instrument construction) belong to neither measurement
    _run_plain(stream[: stream_length // 4])
    _run_durable(stream[: stream_length // 4], interval=64)
    plain = float("inf")
    fraction = float("inf")
    durable = float("inf")
    for _ in range(REPEATS):
        plain = min(plain, _run_plain(stream))
        total, spent = _run_durable(stream, interval=64)
        durable = min(durable, total)
        # durability seconds over *engine* seconds of the same run: box
        # noise inflates both, so the ratio stays put
        fraction = min(fraction, spent / (total - spent))
    return {
        "fleet": len(OVERHEAD_FLEET),
        "events": len(stream),
        "plain_seconds": plain,
        "durable_seconds": durable,
        "ab_fraction": durable / plain - 1.0,
        "overhead_fraction": fraction,
        "plain_events_per_second": len(stream) / plain,
    }


def _signature(drained):
    return {
        name: [
            (
                result.slide_index,
                result.window_end,
                tuple((obj.score, obj.t) for obj in result.objects),
            )
            for result in results
        ]
        for name, results in sorted(drained.items())
    }


def _subscribe_fleet(engine, count):
    # a handful of window shapes, so subscriptions share query groups the
    # way a real tenant fleet does
    shapes = [(200, 10, 50), (200, 5, 50), (400, 10, 100), (100, 5, 25)]
    for i in range(count):
        n, k, s = shapes[i % len(shapes)]
        engine.subscribe(f"q{i:04d}", QuerySpec(n=n, k=k, s=s))


def recovery_run(scale):
    """Crash a 1k-subscription durable engine mid-stream; time recovery
    and verify the continuation against an uncrashed twin."""
    stream_length = max(scale.stream_length // 2, 2_000)
    stream = list(make_dataset("STOCK").take(stream_length))
    crash_at = (stream_length // 2) // 100 * 100  # a chunk boundary
    directory = tempfile.mkdtemp(prefix="repro-bench-rec-")
    try:
        crashed = StreamEngine.recover(
            directory, checkpoint_interval=8, keep_results=True,
            return_results=False,
        )
        _subscribe_fleet(crashed, RECOVERY_SUBSCRIPTIONS)
        crashed.push_many(stream[:crash_at], chunk_size=100)
        # abandon without close(): what SIGKILL leaves behind
        started = time.perf_counter()
        recovered = StreamEngine.recover(
            directory, checkpoint_interval=8, keep_results=True,
            return_results=False,
        )
        recovery_seconds = time.perf_counter() - started
        report = recovered.recovery_report
        recovered.push_many(stream[crash_at:], chunk_size=100)

        twin = StreamEngine(keep_results=True, return_results=False)
        _subscribe_fleet(twin, RECOVERY_SUBSCRIPTIONS)
        twin.push_many(stream, chunk_size=100)
        exact = _signature(recovered.drain_results()) == _signature(
            twin.drain_results()
        )
        recovered.close()
        twin.close()
        return {
            "subscriptions": RECOVERY_SUBSCRIPTIONS,
            "events_before_crash": crash_at,
            "events_total": stream_length,
            "recovery_seconds": recovery_seconds,
            "checkpoint_seq": report.checkpoint_seq,
            "restored_subscriptions": report.restored_subscriptions,
            "replayed_ops": report.replayed_ops,
            "replayed_slides": report.replayed_chunks,
            "replayed_objects": report.replayed_objects,
            "exact": exact,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def write_trajectory(rows, recovery, scale) -> None:
    payload = {
        "benchmark": "durability",
        "scale": scale.name,
        "overhead_target": OVERHEAD_TARGET,
        "rows": rows,
        "recovery": recovery,
        "headline": {
            "max_overhead_fraction": round(
                max(row["overhead_fraction"] for row in rows), 4
            ),
            "recovery_seconds": round(recovery["recovery_seconds"], 4),
            "replayed_slides": recovery["replayed_slides"],
            "subscriptions": recovery["subscriptions"],
            "exact": recovery["exact"],
        },
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_durability(benchmark, scale):
    rows, recovery = run_sweep(
        benchmark,
        lambda: ([overhead_row(scale)], recovery_run(scale)),
    )
    table = format_table(
        f"Durability ({scale.name} scale): WAL+checkpoint cost and recovery",
        ["fleet", "plain s", "durable s", "A/B", "dur fraction", "ev/s plain"],
        [
            [
                row["fleet"],
                row["plain_seconds"],
                row["durable_seconds"],
                row["ab_fraction"],
                row["overhead_fraction"],
                row["plain_events_per_second"],
            ]
            for row in rows
        ],
    )
    note = (
        f"recovery: {recovery['subscriptions']} subscriptions in "
        f"{recovery['recovery_seconds']:.3f}s (checkpoint {recovery['checkpoint_seq']}, "
        f"{recovery['replayed_slides']} WAL slides / "
        f"{recovery['replayed_objects']} objects replayed), "
        f"exact={recovery['exact']}"
    )
    print("\n" + table + "\n" + note)
    write_results(
        "durability", table + "\n" + note, raw={"rows": rows, "recovery": recovery}
    )
    write_trajectory(rows, recovery, scale)

    assert recovery["exact"], (
        "recovered answer stream diverged from the uncrashed twin"
    )
    for row in rows:
        assert row["overhead_fraction"] < OVERHEAD_TARGET, (
            f"durability overhead {row['overhead_fraction']:.1%} exceeds "
            f"the {OVERHEAD_TARGET:.0%} target"
        )
