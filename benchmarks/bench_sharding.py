"""Sharded execution plane — one process vs N worker processes.

Trajectory benchmark (like ``bench_multiquery_sharing``): the headline
numbers are recorded in ``BENCH_sharding.json`` at the repository root (as
well as under ``benchmarks/results/``) to track the sharded plane's
throughput across PRs.

The workload is the ROADMAP's north-star scenario at the next scale axis:
eight users watching one feed with *mixed* window shapes.  The shared
multi-query plane already dedupes co-windowed work inside one process, but
Python's GIL caps that process at a single core; the sharded engine
spreads the query groups over worker processes.  The acceptance bar — a
>= 2.5x throughput gain with 4 shards — therefore only applies on hosts
with at least 4 CPU cores: on fewer cores the same run measures IPC
overhead instead of parallelism, and the recorded ``cpu_count`` says which
one the trajectory file is reporting.  The exactness checks (sharded
answers byte-identical to single-process, mid-stream rebalance answer-
preserving) hold everywhere and are asserted unconditionally.
"""

import json
import os

from repro.bench.experiments import measure_sharding
from repro.bench.reporting import format_table, write_results
from repro.core.query import TopKQuery

from conftest import run_sweep

#: Worker processes of the sharded run.
SHARDS = 4

#: Result sizes cycled over the eight queries.
K_VALUES = (5, 10, 20, 50)

#: Cores needed for the throughput acceptance bar to be meaningful.
MIN_CORES_FOR_SPEEDUP_BAR = 4

#: Throughput bar with >= MIN_CORES_FOR_SPEEDUP_BAR cores: 4 shards must
#: beat one process by this factor on the 8-query mixed-window workload.
SPEEDUP_BAR = 2.5

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sharding.json")


def mixed_workload(scale):
    """Eight queries over four window shapes, two queries per shape.

    Every shape keeps ``s | n`` (20 slides per window), so each
    slide-aligned chunk boundary is an exact boundary for the rebalance
    leg.  Each same-shape pair is *pinned* to one shard (shape index mod
    ``SHARDS``): that keeps the pair's ``k_max`` shared plan intact, uses
    all four workers, and makes the measured parallelism deterministic —
    hash placement would leave utilisation to how these particular shapes
    happen to hash, which is the CLI demo's story, not the benchmark's.
    """
    base = min(2 * scale.default_n, scale.stream_length // 4)
    s1 = max(1, base // 20)
    slides = [s1, max(1, s1 // 2), 2 * s1, max(1, s1 // 4)]
    workload = []
    for index in range(8):
        shape = index % len(slides)
        s = slides[shape]
        n = 20 * s
        k = min(K_VALUES[index % len(K_VALUES)], n)
        workload.append((f"user-{index}", TopKQuery(n=n, k=k, s=s), shape % SHARDS))
    return workload


def sharding_sweep(scale):
    row = measure_sharding(
        dataset="STOCK",
        workload=mixed_workload(scale),
        algorithm="SAP",
        stream_length=scale.stream_length,
        shards=SHARDS,
        placement="hash-window",
        verify=True,
        rebalance=True,
    )
    return [row]


def write_trajectory(rows, scale) -> None:
    row = rows[0]
    payload = {
        "benchmark": "sharding",
        "scale": scale.name,
        "queries": row["queries"],
        "shards": row["shards"],
        "placement": "pinned" if row["pinned"] else row["placement"],
        "cpu_count": row["cpu_count"],
        "rows": rows,
        "headline": {
            "speedup": round(row["speedup"], 3),
            "single_process_objects_per_second": round(
                row["single_process"]["objects_per_second"], 1
            ),
            "sharded_objects_per_second": round(
                row["sharded"]["objects_per_second"], 1
            ),
            "exact": row["exact"],
            "rebalance_exact": row["rebalance_exact"],
        },
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_sharding(benchmark, scale):
    rows = run_sweep(benchmark, sharding_sweep, scale)
    assert rows
    row = rows[0]
    table = format_table(
        f"Sharding ({scale.name} scale): {row['queries']} mixed-window queries, "
        f"one process vs {row['shards']} shards on {row['cpu_count']} core(s)",
        ["single s", "sharded s", "speedup", "single obj/s", "sharded obj/s", "exact", "rebalance"],
        [
            [
                row["single_process"]["seconds"],
                row["sharded"]["seconds"],
                row["speedup"],
                row["single_process"]["objects_per_second"],
                row["sharded"]["objects_per_second"],
                str(row["exact"]),
                str(row["rebalance_exact"]),
            ]
        ],
    )
    print("\n" + table)
    write_results("sharding", table, raw={"rows": rows})
    write_trajectory(rows, scale)

    # Correctness bars hold on any hardware: the sharded plane must be
    # indistinguishable from the single-process engine, including across a
    # mid-stream rebalance.
    assert row["exact"], "sharded answers differ from the single-process engine"
    assert row["rebalance_exact"], "a mid-stream rebalance changed answers"

    # The throughput bar needs actual cores to parallelise over, and a
    # stream long enough that ratios mean something (smoke is neither).
    if row["cpu_count"] >= MIN_CORES_FOR_SPEEDUP_BAR and scale.name != "smoke":
        assert row["speedup"] >= SPEEDUP_BAR, (
            f"{row['shards']} shards only {row['speedup']:.2f}x faster than "
            f"one process on {row['cpu_count']} cores"
        )
