"""Sharded execution plane — one process vs N worker processes.

Trajectory benchmark (like ``bench_multiquery_sharing``): the headline
numbers are recorded in ``BENCH_sharding.json`` at the repository root (as
well as under ``benchmarks/results/``) to track the sharded plane's
throughput across PRs.

The workload is the ROADMAP's north-star scenario at the next scale axis:
eight users watching one feed with *mixed* window shapes.  The shared
multi-query plane already dedupes co-windowed work inside one process, but
Python's GIL caps that process at a single core; the sharded engine
spreads the query groups over worker processes.  The acceptance bar — a
>= 2.5x throughput gain with 4 shards — therefore only applies on hosts
with at least 4 CPU cores: on fewer cores the same run measures IPC
overhead instead of parallelism, and the recorded ``cpu_count`` says which
one the trajectory file is reporting.  The exactness checks (sharded
answers byte-identical to single-process, mid-stream rebalance answer-
preserving) hold everywhere and are asserted unconditionally.
"""

import json
import os

from repro.bench.experiments import measure_sharding
from repro.bench.reporting import format_table, write_results
from repro.core.query import TopKQuery

from conftest import run_sweep

#: Worker processes of the sharded run.
SHARDS = 4

#: Result sizes cycled over the eight queries.
K_VALUES = (5, 10, 20, 50)

#: Cores needed for the throughput acceptance bar to be meaningful.
MIN_CORES_FOR_SPEEDUP_BAR = 4

#: Throughput bar with >= MIN_CORES_FOR_SPEEDUP_BAR cores: 4 shards must
#: beat one process by this factor on the 8-query mixed-window workload.
SPEEDUP_BAR = 2.5

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sharding.json")


def mixed_workload(scale):
    """Eight queries over four window shapes, two queries per shape.

    Every shape keeps ``s | n`` (20 slides per window), so each
    slide-aligned chunk boundary is an exact boundary for the rebalance
    leg.  Each same-shape pair is *pinned* to one shard (shape index mod
    ``SHARDS``): that keeps the pair's ``k_max`` shared plan intact, uses
    all four workers, and makes the measured parallelism deterministic —
    hash placement would leave utilisation to how these particular shapes
    happen to hash, which is the CLI demo's story, not the benchmark's.
    """
    base = min(2 * scale.default_n, scale.stream_length // 4)
    s1 = max(1, base // 20)
    slides = [s1, max(1, s1 // 2), 2 * s1, max(1, s1 // 4)]
    workload = []
    for index in range(8):
        shape = index % len(slides)
        s = slides[shape]
        n = 20 * s
        k = min(K_VALUES[index % len(K_VALUES)], n)
        workload.append((f"user-{index}", TopKQuery(n=n, k=k, s=s), shape % SHARDS))
    return workload


def sharding_sweep(scale):
    """One row per transport: the queue row keeps the full exactness
    battery (verify + mid-stream rebalance); the shm row re-verifies
    byte-identity over the shared-memory ring and carries the per-batch
    serialize/transfer/deserialize breakdown for both."""
    rows = []
    for transport, rebalance in (("queue", True), ("shm", False)):
        rows.append(
            measure_sharding(
                dataset="STOCK",
                workload=mixed_workload(scale),
                algorithm="SAP",
                stream_length=scale.stream_length,
                shards=SHARDS,
                placement="hash-window",
                verify=True,
                rebalance=rebalance,
                transport=transport,
            )
        )
    return rows


def write_trajectory(rows, scale) -> None:
    by_transport = {row["transport"]: row for row in rows}
    queue_row = by_transport.get("queue", rows[0])
    shm_row = by_transport.get("shm")
    headline = {
        "speedup": round(queue_row["speedup"], 3),
        "single_process_objects_per_second": round(
            queue_row["single_process"]["objects_per_second"], 1
        ),
        "sharded_objects_per_second": round(
            queue_row["sharded"]["objects_per_second"], 1
        ),
        "exact": all(row["exact"] for row in rows),
        "rebalance_exact": queue_row["rebalance_exact"],
    }
    if shm_row is not None:
        breakdown = shm_row["transport_breakdown"]
        headline["shm"] = {
            "speedup": round(shm_row["speedup"], 3),
            "sharded_objects_per_second": round(
                shm_row["sharded"]["objects_per_second"], 1
            ),
            "exact": shm_row["exact"],
            "bytes_per_event": round(breakdown["bytes_per_event"], 1),
            "serialize_seconds": round(breakdown["serialize_seconds"], 4),
            "transfer_seconds": round(breakdown["transfer_seconds"], 4),
            "deserialize_seconds": round(breakdown["deserialize_seconds"], 4),
        }
    payload = {
        "benchmark": "sharding",
        "scale": scale.name,
        "queries": queue_row["queries"],
        "shards": queue_row["shards"],
        "placement": "pinned" if queue_row["pinned"] else queue_row["placement"],
        "cpu_count": queue_row["cpu_count"],
        "transports": sorted(by_transport),
        "rows": rows,
        "headline": headline,
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_sharding(benchmark, scale):
    rows = run_sweep(benchmark, sharding_sweep, scale)
    assert rows
    row = rows[0]
    table = format_table(
        f"Sharding ({scale.name} scale): {row['queries']} mixed-window queries, "
        f"one process vs {row['shards']} shards on {row['cpu_count']} core(s)",
        [
            "transport",
            "single s",
            "sharded s",
            "speedup",
            "sharded obj/s",
            "B/event",
            "ser s",
            "xfer s",
            "deser s",
            "exact",
        ],
        [
            [
                each["transport"],
                each["single_process"]["seconds"],
                each["sharded"]["seconds"],
                each["speedup"],
                each["sharded"]["objects_per_second"],
                each["transport_breakdown"]["bytes_per_event"],
                each["transport_breakdown"]["serialize_seconds"],
                each["transport_breakdown"]["transfer_seconds"],
                each["transport_breakdown"]["deserialize_seconds"],
                str(each["exact"]),
            ]
            for each in rows
        ],
    )
    print("\n" + table)
    write_results("sharding", table, raw={"rows": rows})
    write_trajectory(rows, scale)

    # Correctness bars hold on any hardware and over any transport: the
    # sharded plane must be indistinguishable from the single-process
    # engine, including across a mid-stream rebalance.
    for each in rows:
        assert each["exact"], (
            f"sharded answers over the {each['transport']} transport differ "
            "from the single-process engine"
        )
    assert row["rebalance_exact"], "a mid-stream rebalance changed answers"

    # The throughput bar needs actual cores to parallelise over, and a
    # stream long enough that ratios mean something (smoke is neither).
    if row["cpu_count"] >= MIN_CORES_FOR_SPEEDUP_BAR and scale.name != "smoke":
        assert row["speedup"] >= SPEEDUP_BAR, (
            f"{row['shards']} shards only {row['speedup']:.2f}x faster than "
            f"one process on {row['cpu_count']} cores"
        )
