"""Observability plane — what the instruments cost the hot path.

Trajectory benchmark (like ``bench_control_overhead``): the headline
numbers land in ``BENCH_obs.json`` at the repository root so the
instrumentation tax is tracked across PRs.  Two questions are answered:

* **Enabled cost** — an engine with the default (enabled) metrics
  registry against one whose registry is disabled, same stream, same
  query.  Instruments are cached at construction time, so this measures
  the steady-state increment/observe traffic.  The acceptance bar is
  < 5%.
* **Disabled cost** — a disabled registry hands every call site the
  shared NOOP instrument, so the residual tax is one do-nothing method
  call per would-be sample.  Measured directly per operation; the bar is
  that a NOOP op stays under a microsecond (in practice tens of
  nanoseconds — "~0%" of any per-slide budget).

Tracing (spans on) is measured and reported alongside, ungated: it is an
opt-in diagnostic mode, not an always-on path.

The ``smoke`` scale (``REPRO_BENCH_SCALE=smoke``) keeps CI runs to a few
seconds while still driving every instrumented layer.
"""

import json
import os
import time
from timeit import timeit

from repro.core.query import TopKQuery
from repro.engine import StreamEngine
from repro.bench.reporting import format_table, write_results
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.tracing import Tracer, set_tracer
from repro.streams import make_dataset

from conftest import run_sweep

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

#: Acceptance bar for the enabled-registry A/B on the engine hot path.
OVERHEAD_TARGET = 0.05

#: Acceptance bar for one disabled-registry (NOOP) instrument operation.
NOOP_BUDGET_SECONDS = 1e-6

#: A/B repeats per mode; the minimum is reported (scheduler noise only
#: ever adds time, so min-of-N is the honest estimate of the code's cost).
REPEATS = 7


def run_engine(stream, query, algorithm, enabled, traced=False):
    """One full engine run under a fresh registry/tracer; returns seconds."""
    previous_registry = set_registry(MetricsRegistry(enabled=enabled))
    tracer = Tracer()
    if traced:
        tracer.enable()
    previous_tracer = set_tracer(tracer)
    try:
        engine = StreamEngine(keep_results=False, return_results=False)
        engine.subscribe("bench", query, algorithm=algorithm)
        started = time.perf_counter()
        engine.push_many(stream)
        engine.flush()
        return time.perf_counter() - started
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)


def overhead_row(scale, algorithm):
    """Interleaved A/B/A': disabled, enabled, and enabled+traced runs."""
    # Three times the standard stream, floored at 24k events: the A/B compares
    # per-slide costs, and a stream short enough to finish in a few
    # milliseconds would put scheduler noise on the same order as the
    # effect being gated.  Smoke scale therefore measures the same
    # workload shape as quick; only the repeats stay cheap.
    stream_length = max(3 * scale.stream_length, 24_000)
    n = min(1_000, stream_length // 4)
    query = TopKQuery(n=n, k=scale.default_k, s=max(1, n // 20))
    stream = list(make_dataset("STOCK").take(stream_length))
    best = {"disabled": float("inf"), "enabled": float("inf"), "traced": float("inf")}
    for _ in range(REPEATS):
        # Interleaving keeps thermal/frequency drift from biasing a mode.
        best["disabled"] = min(
            best["disabled"], run_engine(stream, query, algorithm, enabled=False)
        )
        best["enabled"] = min(
            best["enabled"], run_engine(stream, query, algorithm, enabled=True)
        )
        best["traced"] = min(
            best["traced"],
            run_engine(stream, query, algorithm, enabled=True, traced=True),
        )
    events = len(stream)
    return {
        "algorithm": algorithm,
        "events": events,
        "disabled_seconds": best["disabled"],
        "enabled_seconds": best["enabled"],
        "traced_seconds": best["traced"],
        "overhead_fraction": best["enabled"] / best["disabled"] - 1.0,
        "traced_overhead_fraction": best["traced"] / best["disabled"] - 1.0,
        "disabled_events_per_second": events / best["disabled"],
    }


def instrument_costs():
    """Per-operation cost of the three instrument kinds, enabled and NOOP."""
    enabled = MetricsRegistry(enabled=True)
    disabled = MetricsRegistry(enabled=False)
    counter = enabled.counter("bench_total")
    histogram = enabled.histogram("bench_seconds")
    noop = disabled.counter("bench_total")
    loops = 200_000
    return {
        "counter_inc_ns": timeit(counter.inc, number=loops) / loops * 1e9,
        "histogram_observe_ns": timeit(
            lambda: histogram.observe(0.003), number=loops
        )
        / loops
        * 1e9,
        "noop_op_ns": timeit(noop.inc, number=loops) / loops * 1e9,
    }


def write_trajectory(rows, ops, scale) -> None:
    payload = {
        "benchmark": "obs_overhead",
        "scale": scale.name,
        "overhead_target": OVERHEAD_TARGET,
        "rows": rows,
        "instrument_ops": {key: round(value, 1) for key, value in ops.items()},
        "headline": {
            "max_overhead_fraction": round(
                max(row["overhead_fraction"] for row in rows), 4
            ),
            "max_traced_overhead_fraction": round(
                max(row["traced_overhead_fraction"] for row in rows), 4
            ),
            "noop_op_ns": round(ops["noop_op_ns"], 1),
        },
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_obs_overhead(benchmark, scale):
    rows, ops = run_sweep(
        benchmark,
        lambda: (
            [overhead_row(scale, algorithm) for algorithm in ("SAP", "MinTopK")],
            instrument_costs(),
        ),
    )
    table = format_table(
        f"Observability overhead ({scale.name} scale): metrics A/B per algorithm",
        ["algorithm", "disabled s", "enabled s", "overhead", "traced", "ev/s off"],
        [
            [
                row["algorithm"],
                row["disabled_seconds"],
                row["enabled_seconds"],
                row["overhead_fraction"],
                row["traced_overhead_fraction"],
                row["disabled_events_per_second"],
            ]
            for row in rows
        ],
    )
    ops_note = (
        f"per-op: counter.inc {ops['counter_inc_ns']:.0f}ns, "
        f"histogram.observe {ops['histogram_observe_ns']:.0f}ns, "
        f"noop {ops['noop_op_ns']:.0f}ns"
    )
    print("\n" + table + "\n" + ops_note)
    write_results("obs_overhead", table + "\n" + ops_note, raw={"rows": rows, "ops": ops})
    write_trajectory(rows, ops, scale)

    for row in rows:
        assert row["overhead_fraction"] < OVERHEAD_TARGET, (
            f"{row['algorithm']}: enabled-metrics overhead "
            f"{row['overhead_fraction']:.1%} exceeds the {OVERHEAD_TARGET:.0%} target"
        )
    assert ops["noop_op_ns"] < NOOP_BUDGET_SECONDS * 1e9, (
        f"a disabled-registry op costs {ops['noop_op_ns']:.0f}ns — "
        "the NOOP path is no longer free"
    )
