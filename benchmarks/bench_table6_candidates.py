"""Table 6 — average candidate counts of SAP vs MinTopK vs k-skyband.

Appendix E of the paper reports the average size of the candidate set,
sampled at every window slide, while varying n, k, and s on all five
datasets (SMA is excluded because its grid indexes the whole window).  The
runs are shared with the Figure 9/10 benchmarks through the measurement
cache, so this module mostly re-reports their candidate columns.
"""

import pytest

from repro.bench.experiments import sweep_parameter
from repro.bench.reporting import format_table, write_results
from repro.registry import algorithm_factories

from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]
FACTORIES = algorithm_factories("SAP", "MinTopK", "k-skyband")
PARAMETERS = ["n", "k", "s"]


def _values(scale, parameter):
    return {"n": scale.n_values, "k": scale.k_values, "s": scale.s_values}[parameter]


@pytest.mark.parametrize("parameter", PARAMETERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_table6_candidate_counts(benchmark, scale, dataset, parameter):
    rows = run_sweep(
        benchmark, sweep_parameter, dataset, scale, parameter, _values(scale, parameter), FACTORIES
    )
    assert rows
    table = format_table(
        f"Table 6 ({dataset}, varying {parameter}, {scale.name} scale): "
        "average candidate count",
        [parameter, "algorithm", "avg candidates"],
        [[row["value"], row["algorithm"], row["candidates"]] for row in rows],
        float_format="{:.1f}",
    )
    print("\n" + table)
    write_results(f"table6_{dataset.lower()}_{parameter}", table, raw={"rows": rows})

    # The core space claim of the paper: SAP does not maintain more
    # candidates than the plain k-skyband approach.  A small tolerance
    # absorbs the quick scale's compressed n/k ratio.
    sap = sum(r["candidates"] for r in rows if r["algorithm"] == "SAP")
    skyband = sum(r["candidates"] for r in rows if r["algorithm"] == "k-skyband")
    assert sap < skyband * 1.25
