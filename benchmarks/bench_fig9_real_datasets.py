"""Figure 9 — running time of SAP vs MinTopK vs SMA vs k-skyband (real data).

Figure 9 of the paper has nine sub-figures: running time on STOCK, TRIP,
and PLANET while varying the window size ``n`` (a–c), the result size ``k``
(d–f), and the slide ``s`` (g–i).  Each benchmark case regenerates one
sub-figure as a series of (parameter value, algorithm, seconds) rows.
"""

import pytest

from repro.bench.experiments import ALGORITHM_FACTORIES, sweep_parameter
from repro.bench.plotting import render_sweep
from repro.bench.reporting import format_table, write_results

from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET"]
SUBFIGURES = {
    "n": "Fig 9(a-c)",
    "k": "Fig 9(d-f)",
    "s": "Fig 9(g-i)",
}


def _values(scale, parameter):
    return {"n": scale.n_values, "k": scale.k_values, "s": scale.s_values}[parameter]


@pytest.mark.parametrize("parameter", list(SUBFIGURES))
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9_running_time(benchmark, scale, dataset, parameter):
    rows = run_sweep(
        benchmark,
        sweep_parameter,
        dataset,
        scale,
        parameter,
        _values(scale, parameter),
        ALGORITHM_FACTORIES,
    )
    assert rows
    table = format_table(
        f"{SUBFIGURES[parameter]} — {dataset}, running time vs {parameter} "
        f"({scale.name} scale)",
        [parameter, "algorithm", "seconds", "avg candidates", "memory KB"],
        [
            [row["value"], row["algorithm"], row["seconds"], row["candidates"], row["memory_kb"]]
            for row in rows
        ],
    )
    chart = render_sweep(
        f"{SUBFIGURES[parameter]} — {dataset}: running time series", rows
    )
    print("\n" + table + "\n\n" + chart)
    write_results(
        f"fig9_{dataset.lower()}_{parameter}", table + "\n\n" + chart, raw={"rows": rows}
    )
    assert {row["algorithm"] for row in rows} == set(ALGORITHM_FACTORIES)
