"""Subscription scale — clustered preference plans vs per-user exact plans.

Trajectory benchmark for ROADMAP item 5 ("millions of users"): the
headline numbers are recorded in ``BENCH_scale.json`` at the repository
root (and under ``benchmarks/results/``) to track the clustering plane's
scaling across PRs.

The workload is many users with *distinct but similar* preference
vectors (drawn around a few shared "tastes") watching one attribute
stream through the same window shape.  The clustered engine answers a
whole cluster from one padded-k shared plan plus a vectorized per-member
re-rank; the baseline gives every user a private exact plan — the status
quo this PR removes.  The baseline's cost is linear in users by
construction, so it is measured on a subsample and extrapolated; the
recorded ``baseline.measured_users`` says how much was measured versus
scaled.

Tiers: the smoke scale runs 1k users (the CI leg), quick adds 10k, and
the full scale adds 100k.  The acceptance bar — clustered >= 5x the
per-user baseline's events/s at 10k users — applies from the 10k tier
up; exactness (sampled members byte-identical to single-user engines)
is asserted at every tier unconditionally.
"""

import json
import os

from repro.bench.experiments import measure_preference_scale
from repro.bench.reporting import format_table, write_results
from repro.core.query import TopKQuery

from conftest import run_sweep

#: Users per tier, keyed by benchmark scale.
TIERS = {
    "smoke": (1_000,),
    "quick": (1_000, 10_000),
    "full": (1_000, 10_000, 100_000),
}

#: Acceptance bar: clustered must beat per-user exact plans by this
#: factor at 10k users and above.
SPEEDUP_BAR = 5.0

#: The 10k-and-up tiers the bar applies to.
BAR_FROM_USERS = 10_000

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_scale.json")


def scale_query(scale):
    """One window shape for every user, sized so a tier runs in bounded
    slides (~150 per stream) regardless of the configured scale."""
    s = max(1, scale.stream_length // 150)
    n = max(scale.default_n, 4 * s)
    return TopKQuery(n=n, k=min(10, n), s=s)


def scale_sweep(scale):
    query = scale_query(scale)
    return [
        measure_preference_scale(
            users,
            query,
            scale.stream_length,
            baseline_users=min(500, users),
            exactness_sample=8 if scale.name != "full" else 4,
        )
        for users in TIERS[scale.name]
    ]


def write_trajectory(rows, scale) -> None:
    by_users = {row["users"]: row for row in rows}
    largest = rows[-1]
    smallest = rows[0]
    # Sub-linear memory: going from the smallest to the largest measured
    # tier, summed clustered memory must grow slower than the user count
    # (the shared plans amortise; only re-rank state is per-member).
    if largest["users"] > smallest["users"]:
        memory_growth = largest["clustered"]["memory_bytes"] / max(
            1, smallest["clustered"]["memory_bytes"]
        )
        user_growth = largest["users"] / smallest["users"]
        memory_sublinear = memory_growth < user_growth
    else:
        memory_growth = user_growth = None
        memory_sublinear = None
    row_10k = by_users.get(BAR_FROM_USERS)
    headline = {
        "exact": all(row["exact"] for row in rows),
        "speedup_bar": SPEEDUP_BAR,
        # None when the 10k tier was not measured (the CI smoke leg runs
        # 1k only); the field itself always exists so trajectory readers
        # and the CI assertion have a stable schema.
        "speedup_10k": None if row_10k is None else row_10k["speedup"],
        "speedup_at_largest_tier": largest["speedup"],
        "largest_tier_users": largest["users"],
        "events_per_second": {
            str(row["users"]): row["clustered"]["events_per_second"] for row in rows
        },
        "memory_sublinear": memory_sublinear,
        "memory_growth": memory_growth,
        "user_growth": user_growth,
        "fallbacks": sum(row["fallbacks"] for row in rows),
    }
    payload = {
        "benchmark": "scale",
        "scale": scale.name,
        "tiers": [row["users"] for row in rows],
        "rows": rows,
        "headline": headline,
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_scale(benchmark, scale):
    rows = run_sweep(benchmark, scale_sweep, scale)
    assert rows
    table = format_table(
        f"Subscription scale ({scale.name}): clustered plans vs per-user "
        f"exact plans, {rows[0]['stream_length']} events",
        [
            "users",
            "clusters",
            "clustered s",
            "clustered ev/s",
            "baseline s",
            "speedup",
            "mem ratio",
            "fallbacks",
            "exact",
        ],
        [
            [
                row["users"],
                row["clusters"],
                row["clustered"]["seconds"],
                row["clustered"]["events_per_second"],
                row["baseline"]["seconds"],
                row["speedup"],
                row["memory_ratio"],
                row["fallbacks"],
                str(row["exact"]),
            ]
            for row in rows
        ],
    )
    print("\n" + table)
    write_results("scale", table, raw={"rows": rows})
    write_trajectory(rows, scale)

    # Exactness holds at every tier on any hardware: sampled members of
    # the clustered engine must be byte-identical to single-user engines.
    for row in rows:
        assert row["exact"], (
            f"clustered answers diverged from single-user engines at "
            f"{row['users']} users"
        )

    # The throughput bar applies where the tentpole claims it: 10k+.
    for row in rows:
        if row["users"] >= BAR_FROM_USERS and scale.name != "smoke":
            assert row["speedup"] >= SPEEDUP_BAR, (
                f"clustered plans only {row['speedup']:.2f}x faster than "
                f"per-user exact plans at {row['users']} users"
            )
