"""Table 8 — memory consumption of SAP vs MinTopK vs k-skyband.

Appendix F of the paper reports the memory occupied by each algorithm's
structures (in KB) while varying n, k, and s.  The measurement runs are
shared with Table 6 / Figures 9-10 via the cache; this module re-reports
the memory column.
"""

import pytest

from repro.bench.experiments import sweep_parameter
from repro.bench.reporting import format_table, write_results
from repro.registry import algorithm_factories

from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]
FACTORIES = algorithm_factories("SAP", "MinTopK", "k-skyband")
PARAMETERS = ["n", "k", "s"]


def _values(scale, parameter):
    return {"n": scale.n_values, "k": scale.k_values, "s": scale.s_values}[parameter]


@pytest.mark.parametrize("parameter", PARAMETERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_table8_memory(benchmark, scale, dataset, parameter):
    rows = run_sweep(
        benchmark, sweep_parameter, dataset, scale, parameter, _values(scale, parameter), FACTORIES
    )
    assert rows
    table = format_table(
        f"Table 8 ({dataset}, varying {parameter}, {scale.name} scale): "
        "memory consumption (KB)",
        [parameter, "algorithm", "memory KB"],
        [[row["value"], row["algorithm"], row["memory_kb"]] for row in rows],
        float_format="{:.2f}",
    )
    print("\n" + table)
    write_results(f"table8_{dataset.lower()}_{parameter}", table, raw={"rows": rows})

    # Sanity only; the memory comparison (which tracks candidate counts) is
    # recorded in the results file and discussed in EXPERIMENTS.md.
    assert all(row["memory_kb"] > 0 for row in rows)
    assert {row["algorithm"] for row in rows} == set(FACTORIES)
