"""Adaptive control plane — overhead when idle, payoff under drift.

Trajectory benchmark (like ``bench_multiquery_sharing``): the headline
numbers are recorded in ``BENCH_control.json`` at the repository root to
track the control plane across PRs.  Two questions are answered:

* **Overhead** — what does attaching an :class:`AdaptiveController` cost
  when its policy never fires?  The monitor samples every slide and all
  three analyzers run at every boundary, so this is the worst-case idle
  tax.  The acceptance bar is < 5% against a bare engine.
* **Payoff** — on a regime-switching stream (the DRIFT dataset), does the
  default policy's mid-run partitioner swap beat staying on the static
  starting configuration, while producing byte-identical answers?

The module doubles as the CI smoke guard for the control subsystem: the
``smoke`` scale (``REPRO_BENCH_SCALE=smoke``) runs a tiny stream so a CI
job can execute the full monitor→analyze→plan→execute path in seconds.
"""

import json
import os

from repro.bench.experiments import measure_control_overhead, measure_drift_adaptation
from repro.bench.reporting import format_table, write_results
from repro.core.query import TopKQuery

from conftest import run_sweep

#: Trajectory file recorded at the repository root.
TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_control.json")

#: Bound for the headline (component-measured) overhead: the <5% target
#: itself, since the per-slide measurement is robust to scheduler noise.
OVERHEAD_TARGET = 0.05
#: Loose backstop for the wall-clock A/B corroboration, which on shared
#: runners carries several percent of scheduler noise either way.
WALLCLOCK_BACKSTOP = 0.25


def control_shape(scale):
    """The control bench's window: the demo shape of ``repro control``.

    A wide monitoring window with a 5% slide gives the drift analyzer a
    clean per-slide top-score series and leaves dozens of slide
    boundaries per DRIFT phase for tactics to fire on.
    """
    n = min(scale.default_n, scale.stream_length // 4)
    return n, max(1, n // 20)


def overhead_sweep(scale):
    n, s = control_shape(scale)
    query = TopKQuery(n=n, k=scale.default_k, s=s)
    # Twice the standard stream: more slides sharpen the per-slide cost
    # the component overhead measurement divides by.
    stream_length = 2 * scale.stream_length
    rows = []
    for algorithm in ("SAP", "SAP-equal", "MinTopK"):
        rows.append(
            measure_control_overhead(
                dataset="STOCK",
                query=query,
                algorithm=algorithm,
                stream_length=stream_length,
                repeats=5,
            )
        )
    return rows


def drift_row(scale):
    n, s = control_shape(scale)
    query = TopKQuery(n=n, k=min(10, scale.default_k), s=s)
    return measure_drift_adaptation(
        dataset="DRIFT", query=query, stream_length=scale.stream_length
    )


def write_trajectory(overhead_rows, drift, scale) -> None:
    payload = {
        "benchmark": "control_overhead",
        "scale": scale.name,
        "overhead_target": 0.05,
        "rows": overhead_rows,
        "drift": drift,
        "headline": {
            "max_overhead_fraction": round(
                max(row["overhead_fraction"] for row in overhead_rows), 4
            ),
            "drift_speedup_vs_static": round(drift["speedup_vs_static"], 3),
            "drift_tactics_applied": len(drift["tactics_applied"]),
            "drift_exact_match": drift["exact_match"],
        },
    }
    try:
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:
        pass  # read-only checkout; the results dir copy still exists


def test_control_overhead_and_drift(benchmark, scale):
    overhead_rows, drift = run_sweep(
        benchmark, lambda: (overhead_sweep(scale), drift_row(scale))
    )
    table = format_table(
        f"Adaptive control plane ({scale.name} scale): idle overhead and drift payoff",
        ["algorithm", "bare s", "controlled s", "overhead", "wallclock", "bare ev/s"],
        [
            [
                row["algorithm"],
                row["bare_seconds"],
                row["controlled_seconds"],
                row["overhead_fraction"],
                row["wallclock_overhead_fraction"],
                row["bare_events_per_second"],
            ]
            for row in overhead_rows
        ],
    )
    drift_note = (
        f"drift payoff: static-enhanced {drift['static_enhanced_seconds']:.3f}s vs "
        f"adaptive {drift['adaptive_seconds']:.3f}s "
        f"({drift['speedup_vs_static']:.2f}x), "
        f"{len(drift['tactics_applied'])} tactics, "
        f"exact={drift['exact_match']}"
    )
    print("\n" + table + "\n" + drift_note)
    write_results(
        "control_overhead", table + "\n" + drift_note,
        raw={"rows": overhead_rows, "drift": drift},
    )
    write_trajectory(overhead_rows, drift, scale)

    # The subsystem's acceptance bars.  The drifting demo must apply at
    # least one tactic automatically and stay byte-identical to an
    # uncontrolled run; the idle controller must stay cheap.
    assert drift["exact_match"], "adaptive run diverged from the uncontrolled answers"
    assert drift["tactics_applied"], "the planner never adapted on the drifting stream"
    assert drift["accuracy"]["exact"], "load shedding engaged under the default policy"
    for row in overhead_rows:
        assert row["overhead_fraction"] < OVERHEAD_TARGET, (
            f"{row['algorithm']}: controller overhead "
            f"{row['overhead_fraction']:.1%} exceeds the {OVERHEAD_TARGET:.0%} target"
        )
        assert row["wallclock_overhead_fraction"] < WALLCLOCK_BACKSTOP, (
            f"{row['algorithm']}: wall-clock overhead "
            f"{row['wallclock_overhead_fraction']:.1%} exceeds the backstop"
        )
