"""Table 3 — running time of EQUAL vs DYNA vs EN-DYNA while varying n, k, s.

The paper's Table 3 compares the three SAP partitioners on all five
datasets as each query parameter is varied around the defaults.  The
regenerated table reports running time, candidate count, and memory per
partitioner and parameter value.
"""

import pytest

from repro.bench.experiments import partitioner_comparison
from repro.bench.reporting import format_table, write_results

from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]
PARAMETERS = ["n", "k", "s"]


def _values(scale, parameter):
    return {"n": scale.n_values, "k": scale.k_values, "s": scale.s_values}[parameter]


@pytest.mark.parametrize("parameter", PARAMETERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_partitioner_comparison(benchmark, scale, dataset, parameter):
    rows = run_sweep(
        benchmark, partitioner_comparison, dataset, scale, parameter, _values(scale, parameter)
    )
    assert rows

    table = format_table(
        f"Table 3 ({dataset}, varying {parameter}, {scale.name} scale): "
        "EQUAL vs DYNA vs EN-DYNA",
        [parameter, "partitioner", "seconds", "avg candidates", "memory KB"],
        [
            [row["value"], row["algorithm"], row["seconds"], row["candidates"], row["memory_kb"]]
            for row in rows
        ],
    )
    print("\n" + table)
    write_results(f"table3_{dataset.lower()}_{parameter}", table, raw={"rows": rows})

    # Sanity only; comparative shapes are recorded in EXPERIMENTS.md.
    assert all(row["seconds"] > 0 for row in rows)
    assert {row["algorithm"] for row in rows} == {"EQUAL", "DYNA", "EN-DYNA"}
