"""Table 5 — running time of SAP vs MinTopK under high-speed streams.

Appendix D of the paper re-runs the comparison with much larger windows and
slides (Table 4's parameters), where MinTopK's per-slide pruning is at its
strongest; only SAP and MinTopK are compared because the other baselines
are already dominated in that regime.  The harness mirrors this with the
scale's high-speed parameters.
"""

import pytest

from repro.bench.experiments import measure_algorithms
from repro.bench.reporting import format_table, write_results
from repro.core.query import TopKQuery
from repro.registry import algorithm_factories

from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]
FACTORIES = algorithm_factories("SAP", "MinTopK")


def highspeed_sweep(dataset, scale):
    """Vary n, k, and s around the high-speed defaults (Table 4)."""
    base_n, base_k, base_s = scale.highspeed_n, scale.highspeed_k, scale.highspeed_s
    configs = [("default", base_n, base_k, base_s)]
    configs += [(f"n={int(base_n * f)}", int(base_n * f), base_k, base_s) for f in (0.5, 2.0)]
    configs += [(f"k={int(base_k * f)}", base_n, int(base_k * f), base_s) for f in (0.5, 2.0)]
    configs += [(f"s={int(base_s * f)}", base_n, base_k, int(base_s * f)) for f in (0.5, 2.0)]
    rows = []
    for label, n, k, s in configs:
        n = min(n, scale.stream_length // 2)
        query = TopKQuery(n=n, k=min(k, n), s=min(s, n))
        measurements = measure_algorithms(dataset, query, FACTORIES, scale.stream_length)
        for name, metrics in measurements.items():
            rows.append({"dataset": dataset, "config": label, "algorithm": name, **metrics})
    return rows


@pytest.mark.parametrize("dataset", DATASETS)
def test_table5_highspeed_running_time(benchmark, scale, dataset):
    rows = run_sweep(benchmark, highspeed_sweep, dataset, scale)
    assert rows
    table = format_table(
        f"Table 5 ({dataset}, {scale.name} scale): SAP vs MinTopK under "
        "high-speed streams",
        ["config", "algorithm", "seconds", "avg candidates", "memory KB"],
        [
            [row["config"], row["algorithm"], row["seconds"], row["candidates"], row["memory_kb"]]
            for row in rows
        ],
    )
    print("\n" + table)
    write_results(f"table5_{dataset.lower()}", table, raw={"rows": rows})
    assert {row["algorithm"] for row in rows} == {"SAP", "MinTopK"}
