"""Table 9 — memory consumption of SAP vs MinTopK under high-speed streams.

Shares its measurement runs with Tables 5 and 7 and re-reports the memory
column, mirroring Appendix F's second table.
"""

import pytest

from repro.bench.reporting import format_table, write_results

from bench_table5_highspeed_time import highspeed_sweep
from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table9_highspeed_memory(benchmark, scale, dataset):
    rows = run_sweep(benchmark, highspeed_sweep, dataset, scale)
    assert rows
    table = format_table(
        f"Table 9 ({dataset}, {scale.name} scale): memory (KB) under "
        "high-speed streams",
        ["config", "algorithm", "memory KB"],
        [[row["config"], row["algorithm"], row["memory_kb"]] for row in rows],
        float_format="{:.2f}",
    )
    print("\n" + table)
    write_results(f"table9_{dataset.lower()}", table, raw={"rows": rows})

    assert {row["algorithm"] for row in rows} == {"SAP", "MinTopK"}
    assert all(row["memory_kb"] > 0 for row in rows)
