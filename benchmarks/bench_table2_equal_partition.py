"""Table 2 — running time of the equal partition under different resolutions.

The paper's Table 2 sweeps the partition resolution ``m`` and compares three
SAP variants on every dataset:

* ``non-delay`` — the meaningful object set of each partition is formed at
  seal time (no delay policy, no group-dominance or threshold pruning);
* ``Algo 1``    — Algorithm 1 (delayed formation) without the S-AVL;
* ``Algo 1 + S-AVL`` — the full design.

The regenerated table reports seconds per variant and per ``m`` together
with ``m*``, the resolution suggested by the cost model.
"""

import pytest

from repro.bench.experiments import equal_partition_sweep
from repro.bench.reporting import format_table, write_results

from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table2_equal_partition(benchmark, scale, dataset):
    rows = run_sweep(benchmark, equal_partition_sweep, dataset, scale)
    assert rows, "sweep produced no measurements"

    table = format_table(
        f"Table 2 ({dataset}, {scale.name} scale): equal partition, varying m "
        f"(m* = {rows[0]['m_star']})",
        ["m", "variant", "seconds", "avg candidates"],
        [[row["m"], row["variant"], row["seconds"], row["candidates"]] for row in rows],
    )
    print("\n" + table)
    write_results(f"table2_{dataset.lower()}", table, raw={"rows": rows})

    # Sanity only — timing comparisons are recorded in the results file and
    # discussed in EXPERIMENTS.md rather than asserted (Python timing noise
    # at the quick scale would make hard assertions flaky).
    assert all(row["seconds"] > 0 for row in rows)
    assert {row["variant"] for row in rows} == {"non-delay", "Algo1", "Algo1+S-AVL"}
