"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md for the experiment index).  The measured
numbers are written to ``benchmarks/results/<name>.txt`` (and ``.json``) so
they can be compared against the paper after the run; the pytest-benchmark
summary printed at the end times each sweep as a whole.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import scale_from_env


@pytest.fixture(scope="session")
def scale():
    """Benchmark scale (quick by default, full via REPRO_BENCH_SCALE=full)."""
    return scale_from_env()


def run_sweep(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
