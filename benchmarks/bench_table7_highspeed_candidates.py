"""Table 7 — candidate counts of SAP vs MinTopK under high-speed streams.

Shares its measurement runs with Table 5 through the measurement cache and
re-reports the candidate column, mirroring Appendix E's second table.
"""

import pytest

from repro.bench.reporting import format_table, write_results

from bench_table5_highspeed_time import highspeed_sweep
from conftest import run_sweep

DATASETS = ["STOCK", "TRIP", "PLANET", "TIMEU", "TIMER"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table7_highspeed_candidates(benchmark, scale, dataset):
    rows = run_sweep(benchmark, highspeed_sweep, dataset, scale)
    assert rows
    table = format_table(
        f"Table 7 ({dataset}, {scale.name} scale): candidate counts under "
        "high-speed streams",
        ["config", "algorithm", "avg candidates"],
        [[row["config"], row["algorithm"], row["candidates"]] for row in rows],
        float_format="{:.1f}",
    )
    print("\n" + table)
    write_results(f"table7_{dataset.lower()}", table, raw={"rows": rows})

    # Sanity only; the SAP-vs-MinTopK gap in the very-large-slide regime is
    # discussed in EXPERIMENTS.md (it narrows, exactly as the paper notes).
    assert {row["algorithm"] for row in rows} == {"SAP", "MinTopK"}
    assert all(row["candidates"] > 0 for row in rows)
